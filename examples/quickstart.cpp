// Quickstart: the three entry points of the library in ~60 lines.
//
//   1. exact selection       core::sample_select
//   2. approximate selection core::approx_select
//   3. top-k selection       core::topk_largest
//
// Everything runs on a simulated GPU (simt::Device); pick an architecture
// preset, generate (or supply) data, call the algorithm.  Simulated
// durations come from the device's calibrated timing model.

#include <iostream>

#include "core/approx_select.hpp"
#include "core/sample_select.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"

int main() {
    using namespace gpusel;

    // A simulated Tesla V100.  (simt::arch_k20xm() gives the Kepler card.)
    simt::Device dev(simt::arch_v100());

    // 16M uniform random floats; we want the median.
    const std::size_t n = 1 << 24;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 42});
    const std::size_t k = n / 2;

    // ---- 1. exact selection ------------------------------------------------
    core::SampleSelectConfig cfg;           // 256 buckets, shared atomics, ...
    const auto exact = core::sample_select<float>(dev, data, k, cfg);
    std::cout << "exact median        = " << exact.value << "\n"
              << "  recursion levels  = " << exact.levels << "\n"
              << "  simulated time    = " << exact.sim_ns / 1e6 << " ms ("
              << static_cast<double>(n) / exact.sim_ns << "e9 elements/s)\n";

    // ---- 2. approximate selection (one bucketing level) ---------------------
    core::SampleSelectConfig acfg;
    acfg.num_buckets = 1024;                // no oracles -> up to 1024 buckets
    const auto approx = core::approx_select<float>(dev, data, k, acfg);
    std::cout << "approx median       = " << approx.value << "\n"
              << "  exact rank        = " << approx.splitter_rank << " (target " << k << ")\n"
              << "  rel. rank error   = "
              << static_cast<double>(approx.rank_error) / static_cast<double>(n) * 100 << " %\n"
              << "  simulated time    = " << approx.sim_ns / 1e6 << " ms ("
              << exact.sim_ns / approx.sim_ns << "x faster than exact)\n";

    // ---- 3. top-k selection (fused filter, Sec. IV-I) -----------------------
    const std::size_t topk = 10;
    const auto top = core::topk_largest<float>(dev, data, topk, cfg);
    std::cout << "top-" << topk << " threshold    = " << top.threshold << "\n"
              << "  simulated time    = " << top.sim_ns / 1e6 << " ms\n";
    return 0;
}
