// Top-k selection for information retrieval -- the paper's introduction
// names "top-k selection in information retrieval" as a core application.
//
// Scenario: a query scored 4M documents (BM25-like scores: an exponential
// bulk of irrelevant documents plus a heavy tail of relevant ones).  The
// ranker needs the 100 best documents.  Sorting all 4M scores would be
// wasteful; the fused top-k SampleSelect extracts them in a couple of
// passes, and the returned threshold doubles as the cut-off score for
// downstream early-exit scoring.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "core/topk.hpp"
#include "data/rng.hpp"

namespace {

/// Synthetic BM25-ish score distribution: exponential noise floor, with a
/// small relevant set boosted far above it.
std::vector<float> score_documents(std::size_t num_docs, std::size_t num_relevant,
                                   std::uint64_t seed) {
    gpusel::data::Xoshiro256 rng(seed);
    std::vector<float> scores(num_docs);
    for (auto& s : scores) {
        s = static_cast<float>(-std::log(std::max(rng.uniform(), 1e-12)));  // Exp(1)
    }
    for (std::size_t i = 0; i < num_relevant; ++i) {
        scores[rng.bounded(num_docs)] += 8.0f + static_cast<float>(rng.uniform() * 4.0);
    }
    return scores;
}

}  // namespace

int main() {
    using namespace gpusel;
    const std::size_t num_docs = 1 << 22;
    const std::size_t k = 100;

    const auto scores = score_documents(num_docs, /*num_relevant=*/250, /*seed=*/7);

    simt::Device dev(simt::arch_v100());
    core::SampleSelectConfig cfg;
    // A ranker needs document ids, not just scores: the indexed variant
    // returns the original positions of the k best scores.
    const auto top = core::topk_largest_with_indices<float>(dev, scores, k, cfg);

    // Rank the k survivors exactly (k is tiny, sorting is free).
    std::vector<std::size_t> order(k);
    for (std::size_t i = 0; i < k; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return top.values[a] > top.values[b]; });

    std::cout << "scored documents      : " << num_docs << "\n"
              << "retrieved             : " << k << "\n"
              << "score threshold       : " << top.threshold << "\n"
              << "best document         : doc#" << top.indices[order[0]] << " (score "
              << top.values[order[0]] << ")\n"
              << "10th document         : doc#" << top.indices[order[9]] << " (score "
              << top.values[order[9]] << ")\n"
              << "worst retrieved       : doc#" << top.indices[order[k - 1]] << " (score "
              << top.values[order[k - 1]] << ")\n"
              << "simulated time        : " << top.sim_ns / 1e6 << " ms ("
              << static_cast<double>(num_docs) / top.sim_ns << "e9 docs/s)\n";

    // Sanity: the threshold really is the k-th largest score.
    std::vector<float> ref(scores);
    std::nth_element(ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(k - 1), ref.end(),
                     std::greater<>());
    std::cout << "reference k-th score  : " << ref[k - 1]
              << (ref[k - 1] == top.threshold ? "  (matches)" : "  (MISMATCH!)") << "\n";
    return 0;
}
