// Quantile selection in order statistics -- the paper's introduction names
// "quantile selection in order statistics" as the first application, and
// its future-work section proposes multiple-sequence selection; this
// example combines both through the library's multi-rank extension.
//
// Scenario: a service recorded 4M request latencies (log-normal-ish with a
// long tail).  The dashboard needs p50 / p90 / p99 / p99.9 every minute.
// multi_select shares the bucketing passes between all four quantiles
// instead of running four independent selections.

#include <cmath>
#include <iostream>
#include <vector>

#include "core/multiselect.hpp"
#include "data/rng.hpp"

namespace {

/// Synthetic latencies in milliseconds: log-normal body plus a retry tail.
std::vector<float> record_latencies(std::size_t count, std::uint64_t seed) {
    gpusel::data::Xoshiro256 rng(seed);
    std::vector<float> lat(count);
    for (auto& l : lat) {
        const double u1 = std::max(rng.uniform(), 1e-12);
        const double u2 = rng.uniform();
        const double normal = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
        l = static_cast<float>(std::exp(3.0 + 0.6 * normal));  // ~20ms median
        if (rng.uniform() < 0.01) l *= 10.0f;                  // retries
    }
    return lat;
}

}  // namespace

int main() {
    using namespace gpusel;
    const std::size_t n = 1 << 22;
    const auto latencies = record_latencies(n, 23);

    const double quantiles[] = {0.50, 0.90, 0.99, 0.999};
    std::vector<std::size_t> ranks;
    for (const double q : quantiles) {
        ranks.push_back(static_cast<std::size_t>(q * static_cast<double>(n - 1)));
    }

    simt::Device dev(simt::arch_v100());
    const auto res = core::multi_select<float>(dev, latencies, ranks, {});

    std::cout << "latency samples : " << n << "\n";
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        std::cout << "  p" << quantiles[i] * 100 << "\t= " << res.values[i] << " ms\n";
    }
    std::cout << "selection depth : " << res.max_depth << "\n"
              << "kernel launches : " << res.launches << "\n"
              << "simulated time  : " << res.sim_ns / 1e6 << " ms for all "
              << ranks.size() << " quantiles\n";
    return 0;
}
