// Quantile selection in order statistics -- the paper's introduction names
// "quantile selection in order statistics" as the first application, and
// its future-work section proposes multiple-sequence selection; this
// example combines both through the library's multi-rank extension.
//
// Scenario: a service recorded 4M request latencies (log-normal-ish with a
// long tail).  The dashboard needs p50 / p90 / p99 / p99.9 every minute.
// multi_select shares the bucketing passes between all four quantiles
// instead of running four independent selections.
//
// The second half streams the same telemetry through the sharded layer's
// StreamingQuantile sketch (core/shard_select.hpp): the first chunk's
// exact order statistics fix a splitter tree, every later chunk is one
// count pass, and the dashboard reads quantiles with an exact residual
// rank-error bound at any point -- no need to hold the full stream.

#include <cmath>
#include <cstddef>
#include <iostream>
#include <span>
#include <vector>

#include "core/multiselect.hpp"
#include "core/shard_select.hpp"
#include "data/rng.hpp"

namespace {

/// Synthetic latencies in milliseconds: log-normal body plus a retry tail.
std::vector<float> record_latencies(std::size_t count, std::uint64_t seed) {
    gpusel::data::Xoshiro256 rng(seed);
    std::vector<float> lat(count);
    for (auto& l : lat) {
        const double u1 = std::max(rng.uniform(), 1e-12);
        const double u2 = rng.uniform();
        const double normal = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
        l = static_cast<float>(std::exp(3.0 + 0.6 * normal));  // ~20ms median
        if (rng.uniform() < 0.01) l *= 10.0f;                  // retries
    }
    return lat;
}

}  // namespace

int main() {
    using namespace gpusel;
    const std::size_t n = 1 << 22;
    const auto latencies = record_latencies(n, 23);

    const double quantiles[] = {0.50, 0.90, 0.99, 0.999};
    std::vector<std::size_t> ranks;
    for (const double q : quantiles) {
        ranks.push_back(static_cast<std::size_t>(q * static_cast<double>(n - 1)));
    }

    simt::Device dev(simt::arch_v100());
    const auto res = core::multi_select<float>(dev, latencies, ranks, {});

    std::cout << "latency samples : " << n << "\n";
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        std::cout << "  p" << quantiles[i] * 100 << "\t= " << res.values[i] << " ms\n";
    }
    std::cout << "selection depth : " << res.max_depth << "\n"
              << "kernel launches : " << res.launches << "\n"
              << "simulated time  : " << res.sim_ns / 1e6 << " ms for all "
              << ranks.size() << " quantiles\n";

    // Streaming mode: the same samples arrive as 16 chunks over time.
    simt::Device sdev(simt::arch_v100());
    core::ShardSelectConfig scfg;
    scfg.splitter_buckets = 256;  // finer tree -> tighter rank-error bound
    core::StreamingQuantile<float> sketch(sdev, scfg);
    const std::size_t chunk = n / 16;
    for (std::size_t off = 0; off < n; off += chunk) {
        const std::size_t len = std::min(chunk, n - off);
        const auto st = sketch.observe(std::span<const float>(latencies).subspan(off, len));
        if (!st.ok()) {
            std::cerr << "observe failed: " << st.message << "\n";
            return 1;
        }
    }
    std::cout << "\nstreaming sketch over " << sketch.observed() << " samples ("
              << sketch.launches() << " launches):\n";
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        const auto est = sketch.quantile(quantiles[i]);
        if (!est.ok()) {
            std::cerr << "quantile failed: " << est.status().message << "\n";
            return 1;
        }
        const auto& e = est.value();
        std::cout << "  p" << quantiles[i] * 100 << "\t= " << e.value << " ms (exact "
                  << res.values[i] << ", rank error <= " << e.rank_error_bound << " of "
                  << e.n << ")\n";
    }
    return 0;
}
