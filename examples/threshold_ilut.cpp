// Threshold selection for approximate numerical algorithms -- the paper's
// introduction names "determining thresholds in approximative algorithms";
// the authors' own motivating use case is threshold-based incomplete LU
// factorization (ILUT/ParILUT), where each sweep keeps only the m
// largest-magnitude candidate entries and needs the magnitude threshold
// fast, not exactly.
//
// Scenario: a factorization sweep produced 8M candidate entries whose
// magnitudes span many orders of decades (typical for factorizations).  We
// must drop all but the largest 5%.  The rank of the threshold is known
// (95th percentile of magnitudes); approximate SampleSelect finds a
// threshold within a guaranteed rank band in a single counting pass --
// exactly the paper's approximate-selection use case, since keeping 5.01%
// instead of 5.00% of entries is irrelevant to the preconditioner.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "core/approx_select.hpp"
#include "core/sample_select.hpp"
#include "data/rng.hpp"

namespace {

/// Candidate-entry magnitudes: log-uniform over ~12 decades, mimicking
/// fill-in values of an incomplete factorization.
std::vector<double> candidate_magnitudes(std::size_t count, std::uint64_t seed) {
    gpusel::data::Xoshiro256 rng(seed);
    std::vector<double> mags(count);
    for (auto& m : mags) m = std::pow(10.0, -12.0 * rng.uniform());
    return mags;
}

}  // namespace

int main() {
    using namespace gpusel;
    const std::size_t nnz = 1 << 23;
    const double keep_fraction = 0.05;

    const auto mags = candidate_magnitudes(nnz, 11);
    // We keep the largest keep_fraction: the threshold sits at rank
    // (1 - keep_fraction) * n in ascending order.
    const auto rank = static_cast<std::size_t>(
        (1.0 - keep_fraction) * static_cast<double>(nnz));

    simt::Device dev(simt::arch_v100());

    // Approximate: one counting level, 1024 buckets, no oracles.
    core::SampleSelectConfig acfg;
    acfg.num_buckets = 1024;
    const auto approx = core::approx_select<double>(dev, mags, rank, acfg);

    // Exact, for comparison (a real sweep would skip this).
    const auto exact = core::sample_select<double>(dev, mags, rank, {});

    const auto kept = static_cast<std::size_t>(
        std::count_if(mags.begin(), mags.end(), [&](double m) { return m >= approx.value; }));

    std::cout << "candidate entries       : " << nnz << "\n"
              << "target kept fraction    : " << keep_fraction * 100 << " %\n"
              << "approx drop threshold   : " << approx.value << "\n"
              << "exact drop threshold    : " << exact.value << "\n"
              << "actually kept           : "
              << static_cast<double>(kept) / static_cast<double>(nnz) * 100 << " %\n"
              << "rank error              : " << approx.rank_error << " of " << nnz << " ("
              << static_cast<double>(approx.rank_error) / static_cast<double>(nnz) * 100
              << " %)\n"
              << "approx simulated time   : " << approx.sim_ns / 1e6 << " ms\n"
              << "exact simulated time    : " << exact.sim_ns / 1e6 << " ms  ("
              << exact.sim_ns / approx.sim_ns << "x slower)\n";
    return 0;
}
