#!/usr/bin/env python3
"""Static lint gate for SIMT kernel lambdas.

The simulator's memory-safety and race guarantees (docs/static_analysis.md)
only hold for kernel code that goes through the BlockCtx/WarpCtx primitives:
``w.load``/``w.store``, ``blk.ld``/``blk.st``/``blk.shared_ld``/``blk.shared_st``
and the warp atomics.  Raw subscripts on captured device spans, hand-rolled
pointer arithmetic, and host synchronisation objects all bypass both the
event-count accounting and the SimTSan shadow-memory checks, so this script
rejects them before they ever reach a review.

Rules (each can be waived per line with ``// lint-kernels: allow(<rule>)``):

  R1  no-host-sync     -- ``std::atomic``/``std::atomic_ref``/``std::mutex``/
                          lock guards inside a kernel lambda.  Blocks must
                          interact through warp atomics only; a host mutex
                          would serialise what the real GPU runs in parallel
                          and hide races from SimTSan.
  R2  no-pointer-arith -- ``span.data() + k`` arithmetic on a captured span.
                          Pointer arithmetic sidesteps the bounds checks of
                          the checked accessors.
  R3  no-raw-subscript -- ``span[i]`` on a captured or shared-memory span.
                          Use ``blk.ld``/``blk.st`` (global) or
                          ``blk.shared_ld``/``blk.shared_st`` (shared) so OOB
                          and race checking can see the access.  Lane-register
                          C arrays declared inside the lambda are exempt.
  R4  missing-sync     -- a kernel allocates shared memory but never calls
                          ``sync()`` (or a helper documented to sync, e.g.
                          ``sort_in_shared``).  Shared memory without a
                          barrier is almost always a cross-warp race.
  R5  use-compress-store -- a per-lane ``for (l < ...lanes())`` loop that
                          scatters through ``blk.st`` element by element.
                          When the write positions are lane-ordered and
                          consecutive (aggregated fetch_add offsets), the
                          loop is a masked compress-store tile:
                          ``w.compress_store`` (simt/block.hpp).  Waivable
                          where offsets genuinely interleave
                          (non-aggregated global cursors).

Host-scope rules (src/core, src/server and src/baselines .cpp files; they
check the stream/event discipline StreamSan verifies dynamically,
docs/streamsan.md):

  R6  stream-tagged-launch -- a ``device.launch(...)`` whose brace-literal
                          LaunchConfig carries no ``.stream`` member.  An
                          untagged launch lands on the default stream even
                          when the surrounding selection runs on a leased
                          one, silently serialising against stream 0 and
                          bypassing the per-stream pool ordering.  Every
                          host-scope launch must thread the pipeline's
                          stream tag (``.stream = cfg.stream`` or
                          ``ctx.stream()``).  Waivable for single-stream
                          baselines that never fan out.
  R7  event-record-without-wait -- a file calls ``record_event()`` but
                          never ``wait_event()``: a recorded fork edge with
                          no matching join in the same module is either
                          dead code or a missing ordering edge (exactly the
                          wait_unrecorded / fork-without-join hazards
                          StreamSan reports at runtime).

Suppressions are themselves forbidden under ``src/core/`` -- the core kernels
define the idiom and must stay exemplary; waivers are for baselines and
utility layers only.

Engines:
  --engine=regex        (default) pure-regex scan, zero dependencies.
  --engine=clang-query  runs AST matchers through ``clang-query`` when the
                        binary exists; falls back to the regex engine with a
                        note otherwise.  CI and the ``lint-kernels`` CMake
                        target use the regex engine so the gate works in a
                        bare container.

Exit status: 0 clean, 1 findings, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import fnmatch
import pathlib
import re
import shutil
import subprocess
import sys
from dataclasses import dataclass, field

RULES = {
    "R1": "no-host-sync",
    "R2": "no-pointer-arith",
    "R3": "no-raw-subscript",
    "R4": "missing-sync",
    "R5": "use-compress-store",
    "R6": "stream-tagged-launch",
    "R7": "event-record-without-wait",
}

# Files whose kernel lambdas are subject to the kernel rules (R1-R5).
# Relative to repo root.
KERNEL_SCOPE = [
    "src/core/*_kernel.cpp",
    "src/core/topk.cpp",
    "src/baselines/quickselect.cpp",
    "src/bitonic/*.hpp",
    "src/bitonic/*.cpp",
]

# Host-side code subject to the stream/event discipline rules (R6-R7).
HOST_SCOPE = [
    "src/core/*.cpp",
    "src/server/*.cpp",
    "src/baselines/*.cpp",
]

DEFAULT_SCOPE = KERNEL_SCOPE + HOST_SCOPE

# Suppressions may never appear under these prefixes.
NO_SUPPRESSION_PREFIXES = ("src/core/",)

SUPPRESS_RE = re.compile(r"//\s*lint-kernels:\s*allow\(\s*(R[1-7])\s*\)", re.IGNORECASE)

# A kernel lambda: any capture list followed by a BlockCtx& parameter.
LAMBDA_HEAD_RE = re.compile(r"\[[^\[\]]*\]\s*\(\s*(?:gpusel::)?(?:simt::)?BlockCtx\s*&\s*\w+\s*\)")

# Span-typed identifiers: declarations/parameters plus shared_array results.
SPAN_DECL_RE = re.compile(r"std::span<[^;{}()]*?>\s+(\w+)\s*[,;=)\{]")
SHARED_ARRAY_RE = re.compile(r"(?:auto|std::span<[^;{}]*?>)\s+(\w+)\s*=\s*\w+\.shared_array<")
SUBSPAN_RE = re.compile(r"auto\s+(\w+)\s*=\s*(\w+)\.(?:subspan|first|last)\(")

R1_RE = re.compile(
    r"std::atomic\b|std::atomic_ref\b|\batomic_ref<|std::mutex\b"
    r"|std::lock_guard\b|std::scoped_lock\b|std::unique_lock\b|std::condition_variable\b"
)
SYNC_RE = re.compile(r"\b(?:sync|sort_in_shared)\s*\(")
SHARED_ALLOC_RE = re.compile(r"\.shared_array<")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str
    suppressed: bool = False


@dataclass
class FileReport:
    findings: list[Finding] = field(default_factory=list)
    suppressions: list[Finding] = field(default_factory=list)


def scope_match(norm_rel: str, patterns: list[str]) -> bool:
    return any(fnmatch.fnmatch(norm_rel, p) for p in patterns)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving offsets."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_brace_block(text: str, open_idx: int) -> int:
    """Return the offset just past the brace that closes text[open_idx]=='{'."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def split_call_args(clean: str, open_paren: int) -> list[tuple[int, str]]:
    """(offset, text) of each top-level argument of the call at clean[open_paren]=='('."""
    depth = 0
    args: list[tuple[int, str]] = []
    arg_start = open_paren + 1
    for i in range(open_paren, len(clean)):
        c = clean[i]
        if c in "({[":
            depth += 1
        elif c in ")}]":
            depth -= 1
            if depth == 0:
                args.append((arg_start, clean[arg_start:i]))
                return args
        elif c == "," and depth == 1:
            args.append((arg_start, clean[arg_start:i]))
            arg_start = i + 1
    return args


def find_kernel_lambdas(clean: str) -> list[tuple[int, int]]:
    """(body_start, body_end) offsets for every BlockCtx lambda body."""
    bodies = []
    for m in LAMBDA_HEAD_RE.finditer(clean):
        brace = clean.find("{", m.end())
        if brace < 0:
            continue
        # Only whitespace (or nothing) may sit between ')' and '{'.
        if clean[m.end():brace].strip():
            continue
        bodies.append((brace, match_brace_block(clean, brace)))
    return bodies


def span_names(clean: str) -> set[str]:
    names = {m.group(1) for m in SPAN_DECL_RE.finditer(clean)}
    names |= {m.group(1) for m in SHARED_ARRAY_RE.finditer(clean)}
    # Views derived from spans are spans too.
    for _ in range(3):  # fixpoint over short derivation chains
        names |= {m.group(1) for m in SUBSPAN_RE.finditer(clean) if m.group(2) in names}
    return names


def local_array_names(body: str) -> set[str]:
    """C arrays declared inside the lambda (lane registers) -- exempt from R3."""
    decl = re.compile(r"\b(?:\w+(?:::\w+)*(?:<[^;\n]*?>)?)\s+(\w+)\s*\[[^\]]*\]\s*(?:=|;)")
    return {m.group(1) for m in decl.finditer(body)}


def lint_file(path: pathlib.Path, rel: str) -> FileReport:
    text = path.read_text()
    clean = strip_comments_and_strings(text)
    lines = text.splitlines()
    report = FileReport()

    def allowed(rule: str, line_no: int) -> bool:
        """Suppression on the finding line or the line above it."""
        for ln in (line_no, line_no - 1):
            if 1 <= ln <= len(lines):
                m = SUPPRESS_RE.search(lines[ln - 1])
                if m and m.group(1).upper() == rule:
                    return True
        return False

    def emit(rule: str, line_no: int, message: str) -> None:
        f = Finding(rel, line_no, rule, message, suppressed=allowed(rule, line_no))
        if f.suppressed:
            report.suppressions.append(f)
        else:
            report.findings.append(f)

    norm = rel.replace("\\", "/")
    spans = span_names(clean)
    bodies = find_kernel_lambdas(clean) if scope_match(norm, KERNEL_SCOPE) else []

    for start, end in bodies:
        body = clean[start:end]

        # R1: host synchronisation objects.
        for m in R1_RE.finditer(body):
            emit("R1", line_of(clean, start + m.start()),
                 f"host synchronisation primitive `{m.group(0).strip('<')}` inside a kernel "
                 "lambda; blocks may only interact through warp atomics "
                 "(w.atomic_add / w.fetch_add)")

        # R2: pointer arithmetic on captured spans.  __builtin_prefetch
        # arguments are exempt: a prefetch hint is never an architectural
        # access, so it can neither fault nor race.
        for m in re.finditer(r"\b(\w+)\.data\(\)\s*[+\-]", body):
            if m.group(1) in spans:
                prefix = body[max(0, m.start() - 120):m.start()]
                if re.search(r"__builtin_prefetch\s*\([^;]*$", prefix):
                    continue
                emit("R2", line_of(clean, start + m.start()),
                     f"pointer arithmetic on span `{m.group(1)}`; use blk.ld/blk.st or "
                     "w.load/w.store so bounds and races are checked")

        # R3: raw subscript on a span (captured or shared); lambda-local
        # C arrays (lane registers) are exempt.
        locals_ = local_array_names(body)
        for m in re.finditer(r"\b(\w+)\s*\[", body):
            name = m.group(1)
            if name in spans and name not in locals_:
                emit("R3", line_of(clean, start + m.start()),
                     f"raw subscript on span `{name}`; use blk.ld/blk.st (global) or "
                     "blk.shared_ld/blk.shared_st (shared memory)")

        # R5: per-lane scatter loops where a compress-store tile applies.
        # The tell is a store whose arguments index a register tile by the
        # loop variable (``blk.st(out, off[l], elems[l])``); dense column
        # scans that store a scalar accumulator are not scatters.
        for m in re.finditer(
                r"for\s*\(\s*(?:int|auto|std::\w+)\s+(\w+)\s*=[^;)]*;"
                r"\s*\1\s*<\s*[\w.]*lanes\(\)\s*;[^)]*\)", body):
            open_idx = body.find("{", m.end())
            if open_idx < 0 or body[m.end():open_idx].strip():
                continue
            loop_body = body[open_idx:match_brace_block(body, open_idx)]
            var = re.escape(m.group(1))
            if re.search(r"\b\w+\.st\([^;]*\[\s*" + var + r"\s*\]", loop_body):
                emit("R5", line_of(clean, start + m.start()),
                     "per-lane scatter loop writes through blk.st element by element; "
                     "lane-ordered consecutive offsets compress into one tile -- use "
                     "w.compress_store / simd-tier compress_store primitives")

        # R4: shared memory allocated but no barrier in sight.
        alloc = SHARED_ALLOC_RE.search(body)
        if alloc and not SYNC_RE.search(body):
            emit("R4", line_of(clean, start + alloc.start()),
                 "kernel allocates shared memory but never calls sync(); cross-warp "
                 "shared traffic without a barrier is a race")

    if scope_match(norm, HOST_SCOPE):
        # R6: every host-scope launch with a brace-literal config must tag
        # its stream.  Configs passed as named variables are not checked
        # here (StreamSan covers them dynamically).
        for m in re.finditer(r"(?:\.|->)\s*launch\s*\(", clean):
            args = split_call_args(clean, m.end() - 1)
            if len(args) < 2:
                continue
            cfg = args[1][1].strip()
            if cfg.startswith("{") and ".stream" not in cfg:
                emit("R6", line_of(clean, m.start()),
                     "launch config carries no .stream tag; an untagged launch lands "
                     "on the default stream even when the selection runs on a leased "
                     "one -- thread the pipeline's stream (.stream = cfg.stream / "
                     "ctx.stream())")

        # R7: a fork edge recorded with no join in the same module.
        records = list(re.finditer(r"\brecord_event\s*\(", clean))
        if records and not re.search(r"\bwait_event\s*\(", clean):
            emit("R7", line_of(clean, records[0].start()),
                 "record_event() with no matching wait_event() in this module: a "
                 "recorded fork edge that nothing joins is dead code or a missing "
                 "ordering edge (StreamSan reports the runtime counterpart as "
                 "wait_unrecorded / a cross-stream race)")

    # Suppressions are forbidden in the core kernel set.
    if any(norm.startswith(p) for p in NO_SUPPRESSION_PREFIXES):
        for s in report.suppressions:
            report.findings.append(Finding(
                rel, s.line, s.rule,
                f"suppression of {s.rule} is not allowed under src/core/ -- fix the "
                "kernel instead"))
        report.suppressions = []
    return report


def resolve_scope(root: pathlib.Path, explicit: list[str]) -> list[pathlib.Path]:
    if explicit:
        return [pathlib.Path(p) for p in explicit]
    files: list[pathlib.Path] = []
    for pattern in DEFAULT_SCOPE:
        files.extend(f for f in sorted(root.glob(pattern)) if f not in files)
    return files


def run_clang_query(files: list[pathlib.Path]) -> int | None:
    """Best-effort AST pass; returns None when clang-query is unavailable."""
    cq = shutil.which("clang-query")
    if cq is None:
        return None
    matcher = (
        "match declRefExpr(to(varDecl(hasType(cxxRecordDecl(anyOf("
        "hasName('::std::mutex'), hasName('::std::atomic')))))),"
        " hasAncestor(lambdaExpr()))"
    )
    status = 0
    for f in files:
        proc = subprocess.run(
            [cq, "-c", matcher, str(f), "--", "-std=c++20"],
            capture_output=True, text=True, check=False)
        if "0 matches." not in proc.stdout:
            sys.stderr.write(proc.stdout)
            status = 1
    return status


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="files to lint (default: the kernel scope)")
    ap.add_argument("--root", default=None, help="repository root (default: script parent)")
    ap.add_argument("--engine", choices=["regex", "clang-query"], default="regex")
    ap.add_argument("--list-scope", action="store_true", help="print the scoped files and exit")
    args = ap.parse_args(argv)

    root = pathlib.Path(args.root) if args.root else pathlib.Path(__file__).resolve().parent.parent
    files = resolve_scope(root, args.files)
    if args.list_scope:
        for f in files:
            print(f)
        return 0
    missing = [f for f in files if not f.is_file()]
    if missing:
        for f in missing:
            print(f"lint-kernels: error: no such file: {f}", file=sys.stderr)
        return 2

    if args.engine == "clang-query":
        status = run_clang_query(files)
        if status is not None:
            return status
        print("lint-kernels: note: clang-query not found, falling back to regex engine",
              file=sys.stderr)

    total = 0
    suppressed = 0
    for f in files:
        try:
            rel = str(f.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(f)
        report = lint_file(f, rel)
        for v in report.findings:
            print(f"{v.path}:{v.line}: [{v.rule} {RULES[v.rule]}] {v.message}")
            total += 1
        suppressed += len(report.suppressions)

    tail = f" ({suppressed} suppressed)" if suppressed else ""
    if total:
        print(f"lint-kernels: {total} violation(s) in {len(files)} file(s){tail}")
        return 1
    print(f"lint-kernels: OK -- {len(files)} file(s) clean{tail}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
