#!/usr/bin/env python3
"""Benchmark-regression gate for the CI bench job.

Compares a Google-Benchmark JSON run against the committed seed baseline
(results/BENCH_simulator_seed.json) on items_per_second, grouped by
benchmark *family* (the name up to the first '/'), and fails when any
family's geometric-mean throughput ratio drops below 1 - tolerance.

Per-benchmark noise on shared CI runners is real; the family geomean
smooths it while still catching a genuine slowdown in one code path.
Benchmarks present on only one side are reported but never gate.

Usage:
  tools/check_bench_regression.py --current results/BENCH_simulator.json \
      [--baseline results/BENCH_simulator_seed.json] [--tolerance 0.25] \
      [--summary-out delta.md]

  tools/check_bench_regression.py --self-test [--tolerance 0.25]
      Synthesizes a regressed run from the baseline itself (every family
      slowed past the tolerance) and asserts the gate trips, then a
      same-speed run and asserts it passes.  CI runs this every build so
      the gate is continuously verified against an injected regression.

The gate also covers the selection service's latency SLOs when a loadgen
sweep is present (tools/gpusel_loadgen --out results/BENCH_server.json):
per operating point, the current p99 latency may not regress past
--slo-tolerance against results/BENCH_server_seed.json, and the point
tagged slo_nominal=1 must shed nothing -- a nonzero shed rate at the
nominal load means admission control is rejecting work the service is
provisioned for.  Missing server JSONs skip the step (older branches).

Exit codes: 0 pass, 1 regression detected, 2 usage/IO error.

Refreshing the baseline: rerun bench/run_benches.sh on the reference host
and copy results/BENCH_simulator.json over results/BENCH_simulator_seed.json
(see docs/architecture.md, "Benchmark-regression gate").
"""

from __future__ import annotations

import argparse
import copy
import json
import math
import os
import sys

PASS, REGRESSION, USAGE = 0, 1, 2


def load_benchmarks(path):
    """Returns {name: items_per_second} for every timed benchmark."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        ips = b.get("items_per_second")
        if ips is not None and ips > 0:
            out[b["name"]] = float(ips)
    return out


def family_of(name):
    return name.split("/", 1)[0]


# Planner backend tallies exported by bench_simulator_overhead
# (RobustnessCounters::backend_*, see docs/planner.md).  The coverage step
# asserts the bench sweep exercised every selection backend at least once.
BACKEND_COUNTERS = ("backend_sample", "backend_radix", "backend_bitonic")


def planner_coverage(doc):
    """Returns (checked, missing) for the planner-coverage step.

    Sums the backend_* counters across the run's timed benchmarks.
    checked is False when no benchmark reports them (older JSONs, filtered
    runs) -- the step is skipped rather than failed; missing lists the
    backends the sweep never selected.
    """
    sums = {c: 0.0 for c in BACKEND_COUNTERS}
    seen = False
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        for c in BACKEND_COUNTERS:
            if c in b:
                seen = True
                sums[c] += float(b[c])
    if not seen:
        return False, []
    return True, [c for c, v in sums.items() if v <= 0]


# Sharded-selection coverage: the bench sweep must include the
# BM_ShardedSelect family and its modeled interconnect traffic counter
# (bench_simulator_overhead exports link_bytes_per_iter per run).  Unlike
# the planner step this one FAILS when absent -- the sharded lane only
# means something if the benchmark actually ran and moved bytes over the
# modeled links.
SHARD_FAMILY = "BM_ShardedSelect"
LINK_COUNTER_SUBSTR = "link_bytes"


def shard_coverage(doc):
    """Returns the list of problems for the shard-coverage step.

    Empty list == pass.  Problems: the BM_ShardedSelect family is missing
    from the run, or no benchmark in the family carries a positive
    link-byte counter (any counter whose name contains 'link_bytes').
    """
    family_runs = [b for b in doc.get("benchmarks", [])
                   if b.get("run_type") != "aggregate"
                   and family_of(b.get("name", "")) == SHARD_FAMILY]
    if not family_runs:
        return [f"benchmark family {SHARD_FAMILY} absent from the run"]
    link_bytes = 0.0
    seen_counter = False
    for b in family_runs:
        for key, val in b.items():
            if LINK_COUNTER_SUBSTR in key:
                seen_counter = True
                try:
                    link_bytes += float(val)
                except (TypeError, ValueError):
                    pass
    if not seen_counter:
        return [f"no link-byte counter ('{LINK_COUNTER_SUBSTR}') on any "
                f"{SHARD_FAMILY} run"]
    if link_bytes <= 0:
        return [f"{SHARD_FAMILY} ran but reported zero link bytes -- "
                "multi-device transfers never happened"]
    return []


def load_server_points(path):
    """Returns {name: point} from a gpusel_loadgen sweep JSON."""
    with open(path) as f:
        doc = json.load(f)
    return {p["name"]: p for p in doc.get("server_points", [])}


def slo_gate(baseline_points, current_points, slo_tolerance):
    """Latency-SLO step over a loadgen sweep.

    Returns (lines, failures): a markdown table of the sweep and the list
    of SLO violations.  Two checks per operating point:
      * p99 latency may not exceed baseline * (1 + slo_tolerance) for
        points present in both sweeps (baseline_points may be empty);
      * the slo_nominal point must have a zero shed rate -- shedding at
        the nominal load is an admission-control regression, not noise.
    """
    lines = [
        f"## Service SLO gate (p99 tolerance: +{slo_tolerance:.0%} vs seed)",
        "",
        "| point | p99 | vs seed | shed rate | gate |",
        "|---|---|---|---|---|",
    ]
    failures = []
    for name, cur in sorted(current_points.items(),
                            key=lambda kv: kv[1].get("rate_rps", 0)):
        base = baseline_points.get(name)
        point_failures = []
        ratio = None
        if base and base.get("p99_ns"):
            ratio = cur.get("p99_ns", 0.0) / base["p99_ns"]
            if ratio > 1.0 + slo_tolerance:
                point_failures.append(f"{name}: p99 {ratio:.2f}x seed")
        shed_rate = cur.get("shed_rate", 0.0)
        if cur.get("slo_nominal") and shed_rate > 0:
            point_failures.append(
                f"{name}: nonzero shed rate at nominal load ({shed_rate:.1%})")
        failures.extend(point_failures)
        mark = "❌ " + "; ".join(point_failures) if point_failures else "✅"
        vs = f"{ratio:.3f}x" if ratio is not None else "—"
        lines.append(f"| {name} | {cur.get('p99_ns', 0.0) / 1e6:.3f} ms | {vs} "
                     f"| {shed_rate:.1%} | {mark} |")
    lines.append("")
    return lines, failures


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def compare(baseline, current, tolerance):
    """Returns (families, rows, failed_families).

    families: {family: geomean ratio} over benchmarks present in both runs.
    rows: per-benchmark (name, base_ips, cur_ips, ratio-or-None) for the
    markdown table, in baseline order then current-only extras.
    """
    rows = []
    by_family = {}
    for name, base_ips in baseline.items():
        cur_ips = current.get(name)
        ratio = cur_ips / base_ips if cur_ips else None
        rows.append((name, base_ips, cur_ips, ratio))
        if ratio is not None:
            by_family.setdefault(family_of(name), []).append(ratio)
    for name, cur_ips in current.items():
        if name not in baseline:
            rows.append((name, None, cur_ips, None))

    families = {fam: geomean(ratios) for fam, ratios in sorted(by_family.items())}
    failed = [fam for fam, r in families.items() if r < 1.0 - tolerance]
    return families, rows, failed


def fmt_ips(ips):
    return f"{ips / 1e6:.1f} M/s" if ips is not None else "—"


def markdown_report(families, rows, failed, tolerance):
    lines = [
        f"## Benchmark regression gate (tolerance: -{tolerance:.0%} on family geomean)",
        "",
        "| family | geomean vs seed | gate |",
        "|---|---|---|",
    ]
    for fam, ratio in families.items():
        mark = "❌ regression" if fam in failed else "✅"
        lines.append(f"| {fam} | {ratio - 1.0:+.1%} ({ratio:.3f}x) | {mark} |")
    lines += [
        "",
        "<details><summary>Per-benchmark deltas</summary>",
        "",
        "| benchmark | seed | current | ratio |",
        "|---|---|---|---|",
    ]
    for name, base_ips, cur_ips, ratio in rows:
        if ratio is not None:
            delta = f"{ratio:.3f}x"
        elif base_ips is None:
            delta = "new"
        else:
            delta = "missing"
        lines.append(f"| {name} | {fmt_ips(base_ips)} | {fmt_ips(cur_ips)} | {delta} |")
    lines += ["", "</details>", ""]
    return "\n".join(lines)


def run_gate(baseline_path, current_path, tolerance, summary_out,
             server_baseline_path=None, server_current_path=None,
             slo_tolerance=0.25):
    try:
        baseline = load_benchmarks(baseline_path)
        current = load_benchmarks(current_path)
        with open(current_path) as f:
            current_doc = json.load(f)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return USAGE
    if not baseline:
        print(f"error: no timed benchmarks in baseline {baseline_path}", file=sys.stderr)
        return USAGE

    families, rows, failed = compare(baseline, current, tolerance)
    report = markdown_report(families, rows, failed, tolerance)
    print(report)

    sinks = [p for p in (summary_out, os.environ.get("GITHUB_STEP_SUMMARY")) if p]
    for path in sinks:
        with open(path, "a") as f:
            f.write(report + "\n")

    checked, missing = planner_coverage(current_doc)
    if checked and missing:
        print("FAIL: planner coverage: backends never selected by the sweep: "
              f"{', '.join(missing)}", file=sys.stderr)
    elif checked:
        print("planner coverage OK: every selection backend exercised")
    else:
        print("planner coverage skipped: no backend_* counters in this run")

    shard_problems = shard_coverage(current_doc)
    if shard_problems:
        print(f"FAIL: shard coverage: {'; '.join(shard_problems)}",
              file=sys.stderr)
    else:
        print(f"shard coverage OK: {SHARD_FAMILY} ran with nonzero link bytes")

    slo_failures = []
    if server_current_path and os.path.exists(server_current_path):
        try:
            current_points = load_server_points(server_current_path)
            baseline_points = (load_server_points(server_baseline_path)
                               if server_baseline_path and os.path.exists(server_baseline_path)
                               else {})
        except (OSError, json.JSONDecodeError, KeyError) as e:
            print(f"error: {e}", file=sys.stderr)
            return USAGE
        slo_lines, slo_failures = slo_gate(baseline_points, current_points, slo_tolerance)
        slo_report = "\n".join(slo_lines)
        print(slo_report)
        for path in sinks:
            with open(path, "a") as f:
                f.write(slo_report + "\n")
        if slo_failures:
            print(f"FAIL: service SLO violations: {'; '.join(slo_failures)}",
                  file=sys.stderr)
        else:
            print(f"service SLO OK: {len(current_points)} operating points checked")
    else:
        print("service SLO skipped: no loadgen sweep JSON")

    if failed:
        print(f"FAIL: families regressed past -{tolerance:.0%}: {', '.join(failed)}",
              file=sys.stderr)
        return REGRESSION
    if (checked and missing) or shard_problems or slo_failures:
        return REGRESSION
    print(f"OK: {len(families)} families within tolerance "
          f"({len([r for r in rows if r[3] is not None])} benchmarks compared)")
    return PASS


def self_test(baseline_path, tolerance):
    """Verifies the gate trips on an injected regression and stays quiet
    on an unchanged run, without touching the real results."""
    with open(baseline_path) as f:
        doc = json.load(f)

    def synth(scale):
        d = copy.deepcopy(doc)
        for b in d.get("benchmarks", []):
            if "items_per_second" in b:
                b["items_per_second"] *= scale
        return load_benchmarks_from_doc(d)

    def load_benchmarks_from_doc(d):
        return {b["name"]: float(b["items_per_second"])
                for b in d.get("benchmarks", [])
                if b.get("run_type") != "aggregate" and b.get("items_per_second")}

    baseline = load_benchmarks_from_doc(doc)
    # Injected regression: every family slowed to just past the tolerance.
    regressed = synth(1.0 - tolerance - 0.05)
    _, _, failed = compare(baseline, regressed, tolerance)
    if len(failed) != len({family_of(n) for n in baseline}):
        print("self-test FAIL: injected regression did not trip the gate", file=sys.stderr)
        return REGRESSION
    # Unchanged run: must pass.
    _, _, failed = compare(baseline, synth(1.0), tolerance)
    if failed:
        print("self-test FAIL: identical run tripped the gate", file=sys.stderr)
        return REGRESSION
    # Borderline-but-inside run: must pass.
    _, _, failed = compare(baseline, synth(1.0 - tolerance + 0.05), tolerance)
    if failed:
        print("self-test FAIL: within-tolerance run tripped the gate", file=sys.stderr)
        return REGRESSION
    # Planner-coverage step, when the baseline carries backend tallies:
    # the full sweep must cover every backend, and zeroing one backend's
    # tallies must trip the step.
    checked, missing = planner_coverage(doc)
    if checked:
        if missing:
            print("self-test FAIL: baseline sweep does not cover every backend",
                  file=sys.stderr)
            return REGRESSION
        starved = copy.deepcopy(doc)
        for b in starved.get("benchmarks", []):
            if "backend_radix" in b:
                b["backend_radix"] = 0
        checked, missing = planner_coverage(starved)
        if not (checked and missing == ["backend_radix"]):
            print("self-test FAIL: zeroed backend tally did not trip coverage",
                  file=sys.stderr)
            return REGRESSION
    # Shard-coverage step: the baseline must carry the sharded family with
    # traffic on the modeled links, dropping the family must trip, and
    # stripping the link-byte counters must trip.
    if shard_coverage(doc):
        print("self-test FAIL: baseline sweep lacks sharded-selection coverage",
              file=sys.stderr)
        return REGRESSION
    no_family = copy.deepcopy(doc)
    no_family["benchmarks"] = [b for b in no_family.get("benchmarks", [])
                               if family_of(b.get("name", "")) != SHARD_FAMILY]
    if not shard_coverage(no_family):
        print("self-test FAIL: missing sharded family did not trip coverage",
              file=sys.stderr)
        return REGRESSION
    no_links = copy.deepcopy(doc)
    for b in no_links.get("benchmarks", []):
        for key in [k for k in b if LINK_COUNTER_SUBSTR in k]:
            del b[key]
    if not shard_coverage(no_links):
        print("self-test FAIL: stripped link-byte counter did not trip coverage",
              file=sys.stderr)
        return REGRESSION
    # Latency-SLO step, against a synthetic sweep (no files needed): an
    # identical sweep passes, a p99 inflation past the tolerance trips,
    # shedding at the nominal point trips, shedding under overload at a
    # non-nominal point is expected behaviour and must NOT trip.
    slo_tolerance = 0.25
    base_sweep = {
        "SRV_load/500": {"name": "SRV_load/500", "rate_rps": 500,
                         "p99_ns": 1.0e6, "shed_rate": 0.0, "slo_nominal": 1},
        "SRV_load/8000": {"name": "SRV_load/8000", "rate_rps": 8000,
                          "p99_ns": 4.0e6, "shed_rate": 0.3, "slo_nominal": 0},
    }
    _, failures = slo_gate(base_sweep, copy.deepcopy(base_sweep), slo_tolerance)
    if failures:
        print("self-test FAIL: identical sweep tripped the SLO gate", file=sys.stderr)
        return REGRESSION
    inflated = copy.deepcopy(base_sweep)
    inflated["SRV_load/500"]["p99_ns"] *= 1.0 + slo_tolerance + 0.05
    _, failures = slo_gate(base_sweep, inflated, slo_tolerance)
    if len(failures) != 1 or "p99" not in failures[0]:
        print("self-test FAIL: inflated p99 did not trip the SLO gate", file=sys.stderr)
        return REGRESSION
    shedding = copy.deepcopy(base_sweep)
    shedding["SRV_load/500"]["shed_rate"] = 0.02
    _, failures = slo_gate(base_sweep, shedding, slo_tolerance)
    if len(failures) != 1 or "shed" not in failures[0]:
        print("self-test FAIL: nominal shed did not trip the SLO gate", file=sys.stderr)
        return REGRESSION
    print(f"self-test OK: gate trips at -{tolerance:.0%} and passes inside it; "
          "shard coverage trips on a missing family or link counter; "
          "SLO gate trips on p99 inflation and nominal shed")
    return PASS


def main(argv):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline",
                    default=os.path.join(repo_root, "results", "BENCH_simulator_seed.json"))
    ap.add_argument("--current",
                    default=os.path.join(repo_root, "results", "BENCH_simulator.json"))
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional drop in family geomean (default 0.25)")
    ap.add_argument("--summary-out", default=None,
                    help="also append the markdown delta table to this file")
    ap.add_argument("--server-baseline",
                    default=os.path.join(repo_root, "results", "BENCH_server_seed.json"),
                    help="seed loadgen sweep for the SLO gate")
    ap.add_argument("--server-current",
                    default=os.path.join(repo_root, "results", "BENCH_server.json"),
                    help="current loadgen sweep; missing file skips the SLO gate")
    ap.add_argument("--slo-tolerance", type=float, default=0.25,
                    help="allowed fractional p99 increase per operating point "
                         "(default 0.25)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate against a synthesized regression and exit")
    args = ap.parse_args(argv)

    if not 0.0 < args.tolerance < 1.0:
        print("error: --tolerance must be in (0, 1)", file=sys.stderr)
        return USAGE
    if not 0.0 < args.slo_tolerance < 1.0:
        print("error: --slo-tolerance must be in (0, 1)", file=sys.stderr)
        return USAGE
    if args.self_test:
        return self_test(args.baseline, args.tolerance)
    return run_gate(args.baseline, args.current, args.tolerance, args.summary_out,
                    args.server_baseline, args.server_current, args.slo_tolerance)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
