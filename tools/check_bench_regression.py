#!/usr/bin/env python3
"""Benchmark-regression gate for the CI bench job.

Compares a Google-Benchmark JSON run against the committed seed baseline
(results/BENCH_simulator_seed.json) on items_per_second, grouped by
benchmark *family* (the name up to the first '/'), and fails when any
family's geometric-mean throughput ratio drops below 1 - tolerance.

Per-benchmark noise on shared CI runners is real; the family geomean
smooths it while still catching a genuine slowdown in one code path.
Benchmarks present on only one side are reported but never gate.

Usage:
  tools/check_bench_regression.py --current results/BENCH_simulator.json \
      [--baseline results/BENCH_simulator_seed.json] [--tolerance 0.25] \
      [--summary-out delta.md]

  tools/check_bench_regression.py --self-test [--tolerance 0.25]
      Synthesizes a regressed run from the baseline itself (every family
      slowed past the tolerance) and asserts the gate trips, then a
      same-speed run and asserts it passes.  CI runs this every build so
      the gate is continuously verified against an injected regression.

Exit codes: 0 pass, 1 regression detected, 2 usage/IO error.

Refreshing the baseline: rerun bench/run_benches.sh on the reference host
and copy results/BENCH_simulator.json over results/BENCH_simulator_seed.json
(see docs/architecture.md, "Benchmark-regression gate").
"""

from __future__ import annotations

import argparse
import copy
import json
import math
import os
import sys

PASS, REGRESSION, USAGE = 0, 1, 2


def load_benchmarks(path):
    """Returns {name: items_per_second} for every timed benchmark."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        ips = b.get("items_per_second")
        if ips is not None and ips > 0:
            out[b["name"]] = float(ips)
    return out


def family_of(name):
    return name.split("/", 1)[0]


# Planner backend tallies exported by bench_simulator_overhead
# (RobustnessCounters::backend_*, see docs/planner.md).  The coverage step
# asserts the bench sweep exercised every selection backend at least once.
BACKEND_COUNTERS = ("backend_sample", "backend_radix", "backend_bitonic")


def planner_coverage(doc):
    """Returns (checked, missing) for the planner-coverage step.

    Sums the backend_* counters across the run's timed benchmarks.
    checked is False when no benchmark reports them (older JSONs, filtered
    runs) -- the step is skipped rather than failed; missing lists the
    backends the sweep never selected.
    """
    sums = {c: 0.0 for c in BACKEND_COUNTERS}
    seen = False
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        for c in BACKEND_COUNTERS:
            if c in b:
                seen = True
                sums[c] += float(b[c])
    if not seen:
        return False, []
    return True, [c for c, v in sums.items() if v <= 0]


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def compare(baseline, current, tolerance):
    """Returns (families, rows, failed_families).

    families: {family: geomean ratio} over benchmarks present in both runs.
    rows: per-benchmark (name, base_ips, cur_ips, ratio-or-None) for the
    markdown table, in baseline order then current-only extras.
    """
    rows = []
    by_family = {}
    for name, base_ips in baseline.items():
        cur_ips = current.get(name)
        ratio = cur_ips / base_ips if cur_ips else None
        rows.append((name, base_ips, cur_ips, ratio))
        if ratio is not None:
            by_family.setdefault(family_of(name), []).append(ratio)
    for name, cur_ips in current.items():
        if name not in baseline:
            rows.append((name, None, cur_ips, None))

    families = {fam: geomean(ratios) for fam, ratios in sorted(by_family.items())}
    failed = [fam for fam, r in families.items() if r < 1.0 - tolerance]
    return families, rows, failed


def fmt_ips(ips):
    return f"{ips / 1e6:.1f} M/s" if ips is not None else "—"


def markdown_report(families, rows, failed, tolerance):
    lines = [
        f"## Benchmark regression gate (tolerance: -{tolerance:.0%} on family geomean)",
        "",
        "| family | geomean vs seed | gate |",
        "|---|---|---|",
    ]
    for fam, ratio in families.items():
        mark = "❌ regression" if fam in failed else "✅"
        lines.append(f"| {fam} | {ratio - 1.0:+.1%} ({ratio:.3f}x) | {mark} |")
    lines += [
        "",
        "<details><summary>Per-benchmark deltas</summary>",
        "",
        "| benchmark | seed | current | ratio |",
        "|---|---|---|---|",
    ]
    for name, base_ips, cur_ips, ratio in rows:
        if ratio is not None:
            delta = f"{ratio:.3f}x"
        elif base_ips is None:
            delta = "new"
        else:
            delta = "missing"
        lines.append(f"| {name} | {fmt_ips(base_ips)} | {fmt_ips(cur_ips)} | {delta} |")
    lines += ["", "</details>", ""]
    return "\n".join(lines)


def run_gate(baseline_path, current_path, tolerance, summary_out):
    try:
        baseline = load_benchmarks(baseline_path)
        current = load_benchmarks(current_path)
        with open(current_path) as f:
            current_doc = json.load(f)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return USAGE
    if not baseline:
        print(f"error: no timed benchmarks in baseline {baseline_path}", file=sys.stderr)
        return USAGE

    families, rows, failed = compare(baseline, current, tolerance)
    report = markdown_report(families, rows, failed, tolerance)
    print(report)

    sinks = [p for p in (summary_out, os.environ.get("GITHUB_STEP_SUMMARY")) if p]
    for path in sinks:
        with open(path, "a") as f:
            f.write(report + "\n")

    checked, missing = planner_coverage(current_doc)
    if checked and missing:
        print("FAIL: planner coverage: backends never selected by the sweep: "
              f"{', '.join(missing)}", file=sys.stderr)
    elif checked:
        print("planner coverage OK: every selection backend exercised")
    else:
        print("planner coverage skipped: no backend_* counters in this run")

    if failed:
        print(f"FAIL: families regressed past -{tolerance:.0%}: {', '.join(failed)}",
              file=sys.stderr)
        return REGRESSION
    if checked and missing:
        return REGRESSION
    print(f"OK: {len(families)} families within tolerance "
          f"({len([r for r in rows if r[3] is not None])} benchmarks compared)")
    return PASS


def self_test(baseline_path, tolerance):
    """Verifies the gate trips on an injected regression and stays quiet
    on an unchanged run, without touching the real results."""
    with open(baseline_path) as f:
        doc = json.load(f)

    def synth(scale):
        d = copy.deepcopy(doc)
        for b in d.get("benchmarks", []):
            if "items_per_second" in b:
                b["items_per_second"] *= scale
        return load_benchmarks_from_doc(d)

    def load_benchmarks_from_doc(d):
        return {b["name"]: float(b["items_per_second"])
                for b in d.get("benchmarks", [])
                if b.get("run_type") != "aggregate" and b.get("items_per_second")}

    baseline = load_benchmarks_from_doc(doc)
    # Injected regression: every family slowed to just past the tolerance.
    regressed = synth(1.0 - tolerance - 0.05)
    _, _, failed = compare(baseline, regressed, tolerance)
    if len(failed) != len({family_of(n) for n in baseline}):
        print("self-test FAIL: injected regression did not trip the gate", file=sys.stderr)
        return REGRESSION
    # Unchanged run: must pass.
    _, _, failed = compare(baseline, synth(1.0), tolerance)
    if failed:
        print("self-test FAIL: identical run tripped the gate", file=sys.stderr)
        return REGRESSION
    # Borderline-but-inside run: must pass.
    _, _, failed = compare(baseline, synth(1.0 - tolerance + 0.05), tolerance)
    if failed:
        print("self-test FAIL: within-tolerance run tripped the gate", file=sys.stderr)
        return REGRESSION
    # Planner-coverage step, when the baseline carries backend tallies:
    # the full sweep must cover every backend, and zeroing one backend's
    # tallies must trip the step.
    checked, missing = planner_coverage(doc)
    if checked:
        if missing:
            print("self-test FAIL: baseline sweep does not cover every backend",
                  file=sys.stderr)
            return REGRESSION
        starved = copy.deepcopy(doc)
        for b in starved.get("benchmarks", []):
            if "backend_radix" in b:
                b["backend_radix"] = 0
        checked, missing = planner_coverage(starved)
        if not (checked and missing == ["backend_radix"]):
            print("self-test FAIL: zeroed backend tally did not trip coverage",
                  file=sys.stderr)
            return REGRESSION
    print(f"self-test OK: gate trips at -{tolerance:.0%} and passes inside it")
    return PASS


def main(argv):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline",
                    default=os.path.join(repo_root, "results", "BENCH_simulator_seed.json"))
    ap.add_argument("--current",
                    default=os.path.join(repo_root, "results", "BENCH_simulator.json"))
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional drop in family geomean (default 0.25)")
    ap.add_argument("--summary-out", default=None,
                    help="also append the markdown delta table to this file")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate against a synthesized regression and exit")
    args = ap.parse_args(argv)

    if not 0.0 < args.tolerance < 1.0:
        print("error: --tolerance must be in (0, 1)", file=sys.stderr)
        return USAGE
    if args.self_test:
        return self_test(args.baseline, args.tolerance)
    return run_gate(args.baseline, args.current, args.tolerance, args.summary_out)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
