// gpusel_loadgen: open-loop load sweep against the selection service
// (docs/service.md "Load generation").
//
// Sweeps a list of offered arrival rates, runs each against a fresh
// simulated device, prints a summary table, and writes the sweep as the
// bench-results JSON that tools/check_bench_regression.py's SLO gate
// consumes (--server-current / --server-baseline).  Optionally exports a
// chrome trace of the nominal run with the service telemetry tracks
// (queue depth, admission decisions, breaker transitions).
//
// Examples:
//   gpusel_loadgen --rates 500,2000,8000 --out results/BENCH_server.json
//   gpusel_loadgen --rate 2000 --deadline-ns 4e6 --degrade-ns 1e6
//       --trace server_trace.json

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "server/loadgen.hpp"
#include "simt/arch.hpp"
#include "simt/trace.hpp"

namespace {

struct Options {
    std::vector<double> rates;       // requests per simulated second
    double nominal = -1.0;           // slo_nominal marker; default lowest rate
    std::size_t requests = 300;
    std::size_t n = 65536;
    int tenants = 4;
    double deadline_ns = 0.0;
    double degrade_ns = 0.0;
    std::size_t queue_cap = 256;
    std::size_t tenant_cap = 64;
    std::size_t max_batch = 16;
    int streams = 0;
    std::uint64_t seed = 42;
    std::string out;    // JSON path; empty = stdout
    std::string trace;  // chrome-trace path; empty = none
};

void usage() {
    std::cout <<
        "gpusel_loadgen -- open-loop load sweep against the selection service\n"
        "  --rates R1,R2,...    offered rates [req/sim-s] (default 500,1000,2000,4000,8000)\n"
        "  --rate R             single rate (shorthand for --rates R)\n"
        "  --nominal R          rate tagged slo_nominal=1 (default: lowest rate)\n"
        "  --requests N         requests per rate (default 300)\n"
        "  --n N                elements per request (default 65536)\n"
        "  --tenants T          fair-queuing tenants (default 4)\n"
        "  --deadline-ns D      per-request deadline budget, 0 = none (default 0)\n"
        "  --degrade-ns D       queue delay that triggers degradation, 0 = never\n"
        "  --queue-cap N        global queue capacity (default 256)\n"
        "  --tenant-cap N       per-tenant queue capacity (default 64)\n"
        "  --max-batch N        requests coalesced per dispatch round (default 16)\n"
        "  --streams S          stream-fan width, 0 = GPUSEL_STREAMS/auto\n"
        "  --seed S             RNG seed (default 42)\n"
        "  --out FILE           write sweep JSON here (default stdout)\n"
        "  --trace FILE         chrome trace of the nominal run\n";
}

std::vector<double> parse_rates(const std::string& s) {
    std::vector<double> rates;
    std::stringstream ss(s);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        if (!tok.empty()) rates.push_back(std::stod(tok));
    }
    return rates;
}

bool parse(int argc, char** argv, Options& opt) {
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) throw std::invalid_argument(a + " needs a value");
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--rates") {
            opt.rates = parse_rates(next());
        } else if (a == "--rate") {
            opt.rates = {std::stod(next())};
        } else if (a == "--nominal") {
            opt.nominal = std::stod(next());
        } else if (a == "--requests") {
            opt.requests = std::stoul(next());
        } else if (a == "--n") {
            opt.n = std::stoul(next());
        } else if (a == "--tenants") {
            opt.tenants = std::stoi(next());
        } else if (a == "--deadline-ns") {
            opt.deadline_ns = std::stod(next());
        } else if (a == "--degrade-ns") {
            opt.degrade_ns = std::stod(next());
        } else if (a == "--queue-cap") {
            opt.queue_cap = std::stoul(next());
        } else if (a == "--tenant-cap") {
            opt.tenant_cap = std::stoul(next());
        } else if (a == "--max-batch") {
            opt.max_batch = std::stoul(next());
        } else if (a == "--streams") {
            opt.streams = std::stoi(next());
        } else if (a == "--seed") {
            opt.seed = std::stoull(next());
        } else if (a == "--out") {
            opt.out = next();
        } else if (a == "--trace") {
            opt.trace = next();
        } else {
            std::cerr << "unknown option: " << a << "\n";
            return false;
        }
    }
    if (opt.rates.empty()) opt.rates = {500, 1000, 2000, 4000, 8000};
    if (opt.nominal < 0.0) opt.nominal = *std::min_element(opt.rates.begin(), opt.rates.end());
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace gpusel;
    Options opt;
    try {
        if (!parse(argc, argv, opt)) return 2;
    } catch (const std::exception& e) {
        std::cerr << "bad arguments: " << e.what() << "\n";
        return 2;
    }

    server::ServerConfig scfg;
    scfg.queue_capacity = opt.queue_cap;
    scfg.tenant_queue_capacity = opt.tenant_cap;
    scfg.max_batch = opt.max_batch;
    scfg.streams = opt.streams;
    scfg.default_deadline_ns = 0.0;
    scfg.degrade_queue_delay_ns = opt.degrade_ns;

    server::LoadgenConfig lcfg;
    lcfg.requests = opt.requests;
    lcfg.n = opt.n;
    lcfg.tenants = opt.tenants;
    lcfg.deadline_ns = opt.deadline_ns;
    lcfg.seed = opt.seed;

    std::vector<server::LoadgenResult> sweep;
    std::cerr << "rate_rps  completed  shed  ddl_miss  degraded    p50_ms    p99_ms  thrpt_rps\n";
    for (const double rate : opt.rates) {
        // Fresh device per point: deterministic, no cross-point warmth.
        simt::Device dev(simt::arch_v100());
        lcfg.rate_rps = rate;
        const bool nominal = rate == opt.nominal;
        server::ServerConfig point_cfg = scfg;
        point_cfg.record_trace = nominal && !opt.trace.empty();
        server::LoadgenTrace trace;
        const server::LoadgenResult r =
            server::run_loadgen(dev, point_cfg, lcfg, point_cfg.record_trace ? &trace : nullptr);
        sweep.push_back(r);
        std::cerr << rate << "  " << r.completed << "  " << r.shed << "  "
                  << r.deadline_rejected + r.deadline_aborted << "  " << r.degraded << "  "
                  << r.p50_ns / 1e6 << "  " << r.p99_ns / 1e6 << "  " << r.throughput_rps
                  << "\n";
        if (point_cfg.record_trace) {
            std::ofstream ts(opt.trace);
            if (!ts) {
                std::cerr << "cannot open " << opt.trace << " for writing\n";
                return 1;
            }
            simt::write_chrome_trace(ts, dev.profiles(), dev.planner_log(), trace.counters,
                                     trace.instants);
        }
    }

    if (opt.out.empty()) {
        server::write_loadgen_json(std::cout, sweep, opt.nominal);
    } else {
        std::ofstream os(opt.out);
        if (!os) {
            std::cerr << "cannot open " << opt.out << " for writing\n";
            return 1;
        }
        server::write_loadgen_json(os, sweep, opt.nominal);
    }
    return 0;
}
