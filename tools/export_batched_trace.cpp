// Exports the chrome://tracing timeline of one stream-parallel batched
// selection run (docs/batched_execution.md).  CI uploads the result as an
// artifact so every PR carries a visual record of the stream overlap: one
// track per stream, per-problem kernel launches side by side.
//
// Usage:
//   export_batched_trace [--out trace.json] [--problems 8] [--n 1048576]
//                        [--streams 4] [--seed 1]

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/batch_executor.hpp"
#include "data/distributions.hpp"
#include "simt/arch.hpp"
#include "simt/device.hpp"
#include "simt/streamsan.hpp"
#include "simt/trace.hpp"

namespace {

struct Options {
    std::string out = "batched_trace.json";
    std::size_t problems = 8;
    std::size_t n = std::size_t{1} << 20;
    int streams = 4;
    std::uint64_t seed = 1;
};

void usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--out FILE] [--problems N] [--n ELEMENTS] [--streams K] [--seed S]\n";
}

bool parse(int argc, char** argv, Options& opt) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        const char* v = nullptr;
        if (arg == "--out" && (v = next())) {
            opt.out = v;
        } else if (arg == "--problems" && (v = next())) {
            opt.problems = std::strtoull(v, nullptr, 10);
        } else if (arg == "--n" && (v = next())) {
            opt.n = std::strtoull(v, nullptr, 10);
        } else if (arg == "--streams" && (v = next())) {
            opt.streams = std::atoi(v);
        } else if (arg == "--seed" && (v = next())) {
            opt.seed = std::strtoull(v, nullptr, 10);
        } else {
            usage(argv[0]);
            return false;
        }
    }
    return opt.problems > 0 && opt.n > 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace gpusel;
    Options opt;
    if (!parse(argc, argv, opt)) return 2;

    std::vector<std::vector<float>> inputs;
    inputs.reserve(opt.problems);
    std::vector<core::BatchProblem<float>> problems;
    for (std::size_t i = 0; i < opt.problems; ++i) {
        inputs.push_back(data::generate<float>({.n = opt.n,
                                                .dist = data::Distribution::uniform_real,
                                                .seed = opt.seed + i}));
        problems.push_back({inputs.back(), opt.n / 2});
    }

    simt::Device dev(simt::arch_v100());
    core::SampleSelectConfig cfg;
    core::BatchExecutor<float> exec(dev, cfg, {.streams = opt.streams});
    auto run = exec.run(problems);
    if (!run.ok()) {
        std::cerr << "batch failed: " << run.status().message << "\n";
        return 1;
    }
    const auto& res = run.value();

    std::ofstream os(opt.out);
    if (!os) {
        std::cerr << "cannot open " << opt.out << " for writing\n";
        return 1;
    }
    // Under GPUSEL_STREAMSAN=2 the collect-mode hazard annotations render
    // as their own track (docs/streamsan.md); a clean run adds nothing.
    std::vector<simt::TraceInstant> instants;
    if (const simt::StreamSan* ssan = dev.stream_sanitizer();
        ssan != nullptr && ssan->mode() == simt::StreamSanMode::collect) {
        instants = ssan->trace_instants();
    }
    simt::write_chrome_trace(os, dev.profiles(), dev.planner_log(), {}, instants);

    std::cout << "wrote " << opt.out << ": " << opt.problems << " problems of n=" << opt.n
              << " on " << res.streams_used << " streams, " << res.launches << " launches\n"
              << "  wall   " << res.wall_ns / 1e3 << " us\n"
              << "  serial " << res.serial_ns / 1e3 << " us\n"
              << "  overlap " << res.overlap_x() << "x\n";
    return 0;
}
