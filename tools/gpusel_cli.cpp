// gpusel_cli -- run any selection algorithm of the library from the command
// line on a synthetic dataset, report the result, simulated performance and
// (optionally) a kernel timeline or chrome://tracing JSON.
//
// Examples:
//   gpusel_cli --algo sample --n 1048576 --dist uniform_real --rank 524288
//   gpusel_cli --algo approx --buckets 1024 --quantile 0.99 --timeline
//   gpusel_cli --algo quick --arch K20Xm --atomics global --n 4194304
//   gpusel_cli --algo topk --k 100 --dist zipf --trace trace.json
//
// Run with --help for the full option list.

#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "baselines/bucketselect.hpp"
#include "baselines/cpu_reference.hpp"
#include "baselines/quickselect.hpp"
#include "baselines/radixselect.hpp"
#include "core/approx_select.hpp"
#include "core/quantile.hpp"
#include "core/sample_select.hpp"
#include "core/sample_sort.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simt/trace.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;

struct Options {
    std::string algo = "sample";
    std::string arch = "V100";
    std::string dist = "uniform_real";
    std::size_t n = 1 << 20;
    std::size_t distinct = 0;
    std::uint64_t seed = 42;
    std::optional<std::size_t> rank;
    std::optional<double> quantile;
    std::size_t k = 10;  // for topk
    int buckets = 256;
    std::string atomics = "shared";
    bool warp_aggregation = false;
    int block_dim = 256;
    int unroll = 1;
    bool verify = false;
    bool timeline = false;
    std::string trace_path;
};

[[noreturn]] void usage(int code) {
    std::cout <<
        R"(gpusel_cli -- selection algorithms on a simulated GPU

  --algo <name>      sample | approx | quick | bucket | radix | topk | sort
                     (default: sample)
  --arch <name>      V100 | K20Xm                        (default: V100)
  --n <count>        number of elements                  (default: 2^20)
  --dist <name>      uniform_distinct | uniform_real | normal | exponential |
                     sorted_ascending | sorted_descending | organ_pipe |
                     adversarial_cluster | adversarial_geometric | zipf |
                     lognormal                           (default: uniform_real)
  --distinct <d>     distinct values for uniform_distinct (0 = all distinct)
  --seed <s>         dataset/sampling seed               (default: 42)
  --rank <k>         0-based target rank                 (default: n/2)
  --quantile <q>     target quantile in [0,1] (overrides --rank)
  --k <k>            k for --algo topk                   (default: 10)
  --buckets <b>      bucket count (power of two)         (default: 256)
  --atomics <mode>   shared | global                     (default: shared)
  --warp-agg         enable warp-aggregated histogram atomics (Fig. 6)
  --block-dim <t>    threads per block                   (default: 256)
  --unroll <u>       unrolling depth                     (default: 1)
  --verify           check the result against std::nth_element
  --timeline         print a per-kernel time summary
  --trace <file>     write a chrome://tracing JSON of all launches
  --help             this text
)";
    std::exit(code);
}

Options parse(int argc, char** argv) {
    Options o;
    auto need = [&](int& i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            usage(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--algo") o.algo = need(i);
        else if (a == "--arch") o.arch = need(i);
        else if (a == "--dist") o.dist = need(i);
        else if (a == "--n") o.n = std::stoull(need(i));
        else if (a == "--distinct") o.distinct = std::stoull(need(i));
        else if (a == "--seed") o.seed = std::stoull(need(i));
        else if (a == "--rank") o.rank = std::stoull(need(i));
        else if (a == "--quantile") o.quantile = std::stod(need(i));
        else if (a == "--k") o.k = std::stoull(need(i));
        else if (a == "--buckets") o.buckets = std::stoi(need(i));
        else if (a == "--atomics") o.atomics = need(i);
        else if (a == "--warp-agg") o.warp_aggregation = true;
        else if (a == "--block-dim") o.block_dim = std::stoi(need(i));
        else if (a == "--unroll") o.unroll = std::stoi(need(i));
        else if (a == "--verify") o.verify = true;
        else if (a == "--timeline") o.timeline = true;
        else if (a == "--trace") o.trace_path = need(i);
        else if (a == "--help" || a == "-h") usage(0);
        else {
            std::cerr << "unknown option: " << a << "\n";
            usage(2);
        }
    }
    return o;
}

data::Distribution parse_dist(const std::string& name) {
    for (const auto d : data::all_distributions()) {
        if (to_string(d) == name) return d;
    }
    std::cerr << "unknown distribution: " << name << "\n";
    usage(2);
}

int run(const Options& o) {
    const auto dist = parse_dist(o.dist);
    const auto data = data::generate<float>(
        {.n = o.n, .dist = dist, .distinct_values = o.distinct, .seed = o.seed});
    std::size_t rank = o.rank.value_or(o.n / 2);
    if (o.quantile) rank = core::quantile_rank(o.n, *o.quantile);
    if (rank >= o.n) {
        std::cerr << "rank " << rank << " out of range for n = " << o.n << "\n";
        return 2;
    }

    simt::Device dev(simt::preset(o.arch));
    const auto space =
        o.atomics == "global" ? simt::AtomicSpace::global : simt::AtomicSpace::shared;

    core::SampleSelectConfig cfg;
    cfg.num_buckets = o.buckets;
    cfg.atomic_space = space;
    cfg.warp_aggregation = o.warp_aggregation;
    cfg.block_dim = o.block_dim;
    cfg.unroll = o.unroll;
    cfg.seed = o.seed;

    float value = 0;
    double sim_ns = 0;
    if (o.algo == "sample") {
        const auto r = core::sample_select<float>(dev, data, rank, cfg);
        value = r.value;
        sim_ns = r.sim_ns;
        std::cout << "sample_select rank " << rank << " -> " << value << "  (levels "
                  << r.levels << (r.equality_exit ? ", equality exit" : "") << ", launches "
                  << r.launches << ", aux " << r.aux_bytes << " B)\n";
    } else if (o.algo == "approx") {
        const auto r = core::approx_select<float>(dev, data, rank, cfg);
        value = r.value;
        sim_ns = r.sim_ns;
        std::cout << "approx_select rank " << rank << " -> " << value << "  (exact rank "
                  << r.splitter_rank << ", rank error " << r.rank_error << " = "
                  << static_cast<double>(r.rank_error) / static_cast<double>(o.n) * 100
                  << "%, max bucket " << r.max_bucket << ")\n";
    } else if (o.algo == "quick") {
        core::QuickSelectConfig qcfg;
        qcfg.atomic_space = space;
        qcfg.warp_aggregation = o.warp_aggregation;
        qcfg.block_dim = o.block_dim;
        qcfg.unroll = o.unroll;
        qcfg.seed = o.seed;
        const auto r = baselines::quick_select<float>(dev, data, rank, qcfg);
        value = r.value;
        sim_ns = r.sim_ns;
        std::cout << "quick_select rank " << rank << " -> " << value << "  (levels " << r.levels
                  << (r.equality_exit ? ", equality exit" : "") << ")\n";
    } else if (o.algo == "bucket") {
        baselines::BucketSelectConfig bcfg;
        bcfg.num_buckets = o.buckets;
        bcfg.atomic_space = space;
        bcfg.warp_aggregation = o.warp_aggregation;
        bcfg.block_dim = o.block_dim;
        const auto r = baselines::bucket_select<float>(dev, data, rank, bcfg);
        value = r.value;
        sim_ns = r.sim_ns;
        std::cout << "bucket_select rank " << rank << " -> " << value << "  (levels " << r.levels
                  << ")\n";
    } else if (o.algo == "radix") {
        baselines::RadixSelectConfig rcfg;
        rcfg.atomic_space = space;
        rcfg.warp_aggregation = o.warp_aggregation;
        rcfg.block_dim = o.block_dim;
        const auto r = baselines::radix_select<float>(dev, data, rank, rcfg);
        value = r.value;
        sim_ns = r.sim_ns;
        std::cout << "radix_select rank " << rank << " -> " << value << "  (levels " << r.levels
                  << ")\n";
    } else if (o.algo == "topk") {
        const auto r = core::topk_largest<float>(dev, data, o.k, cfg);
        value = r.threshold;
        sim_ns = r.sim_ns;
        std::cout << "topk_largest k=" << o.k << " -> threshold " << value << "  ("
                  << r.elements.size() << " elements, levels " << r.levels << ")\n";
    } else if (o.algo == "sort") {
        const auto r = core::sample_sort<float>(dev, data, cfg);
        value = r.sorted.empty() ? 0.0f : r.sorted[rank];
        sim_ns = r.sim_ns;
        std::cout << "sample_sort -> " << r.sorted.size() << " elements sorted (depth "
                  << r.max_depth << ", launches " << r.launches << ")\n";
    } else {
        std::cerr << "unknown algorithm: " << o.algo << "\n";
        return 2;
    }

    std::cout << "simulated time: " << sim_ns / 1e6 << " ms  ("
              << static_cast<double>(o.n) / sim_ns << "e9 elements/s on " << o.arch << ")\n";

    if (o.verify && o.algo != "sort") {
        const std::size_t vrank = o.algo == "topk" ? o.n - o.k : rank;
        const auto err = stats::rank_error<float>(data, value, vrank);
        if (o.algo == "approx") {
            std::cout << "verify: rank error vs std::nth_element = " << err << "\n";
        } else {
            std::cout << "verify: " << (err == 0 ? "OK (matches std::nth_element)"
                                                 : "MISMATCH vs std::nth_element!")
                      << "\n";
            if (err != 0) return 1;
        }
    }

    if (o.timeline) {
        std::cout << "\nkernel timeline (by total simulated time):\n"
                  << simt::format_timeline(dev.profiles());
    }
    if (!o.trace_path.empty()) {
        std::ofstream f(o.trace_path);
        simt::write_chrome_trace(f, dev.profiles(), dev.planner_log());
        std::cout << "trace written to " << o.trace_path << " (open in chrome://tracing)\n";
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        return run(parse(argc, argv));
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
