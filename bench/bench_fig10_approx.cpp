// Fig. 10: error-throughput plot for approximate vs exact SampleSelect on
// the V100 (paper: n = 2^28 single precision; scaled by
// GPUSEL_BENCH_MAX_LOG_N).  Approximate selection for bucket counts 128,
// 256, 512, 1024 plus the exact baseline; each row reports the relative
// rank-error statistics and the throughput.

#include <iostream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "core/approx_select.hpp"
#include "core/sample_select.hpp"
#include "data/distributions.hpp"
#include "stats/summary.hpp"

namespace {

using namespace gpusel;

}  // namespace

int main() {
    const auto scale = gpusel::bench::Scale::from_env();
    const std::size_t n = std::size_t{1} << scale.max_log_n;  // paper: 2^28
    const std::size_t reps = std::max<std::size_t>(scale.reps, 5);
    std::cout << "Fig. 10 reproduction: error vs throughput, V100, n = " << n
              << " (single precision, uniform, " << reps << " repetitions)\n\n";

    bench::Table t("Fig. 10: approximate vs exact SampleSelect");
    t.set_header({"variant", "rel. rank error (mean)", "rel. error (max)",
                  "throughput [elem/s]", "speedup vs exact"});

    // exact baseline
    stats::Accumulator exact_ns;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        simt::Device dev(simt::arch_v100(), {.record_profiles = false});
        const auto data = data::generate<float>(
            {.n = n, .dist = data::Distribution::uniform_distinct, .seed = rep + 1});
        core::SampleSelectConfig cfg;
        cfg.num_buckets = 256;
        cfg.seed = rep * 5 + 1;
        exact_ns.add(
            core::sample_select<float>(dev, data, data::random_rank(n, rep), cfg).sim_ns);
    }
    t.add_row({"exact (b=256)", "0", "0", bench::fmt_eng(bench::throughput(n, exact_ns.mean())),
               "1.00x"});

    for (const int buckets : {128, 256, 512, 1024}) {
        stats::Accumulator err;
        stats::Accumulator ns;
        for (std::size_t rep = 0; rep < reps; ++rep) {
            simt::Device dev(simt::arch_v100(), {.record_profiles = false});
            const auto data = data::generate<float>(
                {.n = n, .dist = data::Distribution::uniform_distinct, .seed = rep + 1});
            core::SampleSelectConfig cfg;
            cfg.num_buckets = buckets;
            cfg.seed = rep * 5 + 1;
            const auto res =
                core::approx_select<float>(dev, data, data::random_rank(n, rep), cfg);
            err.add(static_cast<double>(res.rank_error) / static_cast<double>(n));
            ns.add(res.sim_ns);
        }
        t.add_row({"approx b=" + std::to_string(buckets), bench::fmt_pct(err.mean(), 4),
                   bench::fmt_pct(err.max(), 4), bench::fmt_eng(bench::throughput(n, ns.mean())),
                   bench::fmt_fixed(exact_ns.mean() / ns.mean(), 2) + "x"});
    }
    t.print(std::cout);
    std::cout << "(paper: ~3x speedup at b=128 with errors approaching 1%; ~50% runtime saving\n"
              << " at b=1024 with ~0.1% mean error)\n";
    return 0;
}
