// Table I: key characteristics of the high-end NVIDIA GPUs.
// Prints the two simulated architecture presets in the paper's layout, plus
// the timing-model parameters each preset carries (the calibration that
// stands in for real silicon; see EXPERIMENTS.md).

#include <iostream>

#include "bench_util/table.hpp"
#include "simt/arch.hpp"

int main() {
    using namespace gpusel;
    const auto k20 = simt::arch_k20xm();
    const auto v100 = simt::arch_v100();

    std::cout << "TABLE I: Key characteristics of the high-end NVIDIA GPUs (simulated presets)\n\n";
    simt::print_table1(std::cout, k20, v100);

    bench::Table model("Timing-model calibration parameters (per EXPERIMENTS.md)");
    model.set_header({"parameter", k20.name, v100.name});
    auto row = [&model](const std::string& name, double a, double b) {
        model.add_row({name, bench::fmt_fixed(a, 2), bench::fmt_fixed(b, 2)});
    };
    row("host launch [ns]", k20.host_launch_ns, v100.host_launch_ns);
    row("device (DP) launch [ns]", k20.device_launch_ns, v100.device_launch_ns);
    row("shared atomics [ops/ns]", k20.shared_atomic_ops_per_ns, v100.shared_atomic_ops_per_ns);
    row("global atomics [ops/ns]", k20.global_atomic_ops_per_ns, v100.global_atomic_ops_per_ns);
    row("shared collision penalty", k20.shared_collision_penalty, v100.shared_collision_penalty);
    row("global collision penalty", k20.global_collision_penalty, v100.global_collision_penalty);
    row("warp votes [ops/ns]", k20.ballot_ops_per_ns, v100.ballot_ops_per_ns);
    row("scattered BW efficiency", k20.scattered_bw_efficiency, v100.scattered_bw_efficiency);
    std::cout << '\n';
    model.print(std::cout);
    return 0;
}
