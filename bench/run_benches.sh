#!/usr/bin/env bash
# Runs the simulator-overhead benchmark suite and records the results as
# JSON under results/.  Usage:
#
#   bench/run_benches.sh [build-dir] [out-json]
#
# Defaults: build-dir = ./build, out-json = results/BENCH_simulator.json.
# Environment knobs understood by the binaries themselves:
#   GPUSEL_SIMD=off|sse2|avx2    cap the lane-vector tier (default: fastest)
#   GPUSEL_WORKERS=N             host worker threads (default: cores - 1)
#
# The committed results/BENCH_simulator_seed.json holds the pre-SIMD seed
# baseline measured on the same host; compare items_per_second against it.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/results/BENCH_simulator.json}"
bench_bin="${build_dir}/bench/bench_simulator_overhead"

if [[ ! -x "${bench_bin}" ]]; then
    echo "error: ${bench_bin} not found -- build first:" >&2
    echo "  cmake -B '${build_dir}' -S '${repo_root}' && cmake --build '${build_dir}' -j" >&2
    exit 1
fi

mkdir -p "$(dirname "${out_json}")"
echo "running ${bench_bin} -> ${out_json}"
"${bench_bin}" \
    --benchmark_out="${out_json}" \
    --benchmark_out_format=json \
    --benchmark_min_time=1 \
    "$@" >/dev/null 2>&1 || {
    # benchmark rejects positional args forwarded from $1/$2; rerun plain.
    "${bench_bin}" \
        --benchmark_out="${out_json}" \
        --benchmark_out_format=json \
        --benchmark_min_time=1 >/dev/null
}

# One-line summary per benchmark: items/sec plus, where the benchmark
# records them, the memory-pool counters (backing allocations and pool
# reuses per iteration, tracker peak_above_baseline in bytes) and the
# robustness counters (fault retries / resamples / fallbacks per iteration
# and the fraction of fault-injected runs that recovered, see
# docs/robustness.md).  All counters also land verbatim in the JSON for
# regression tooling.
python3 - "${out_json}" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
for b in doc.get("benchmarks", []):
    ips = b.get("items_per_second")
    if ips is None:
        continue
    line = f'{b["name"]:40s} {ips / 1e6:10.1f} M items/s'
    if "allocs_per_iter" in b:
        line += (f'  allocs/iter={b["allocs_per_iter"]:6.1f}'
                 f'  reuses/iter={b.get("reuses_per_iter", 0.0):6.1f}'
                 f'  peak_aux={int(b.get("peak_aux_bytes", 0))}B')
    if "recovered_frac" in b:
        line += (f'  retries/iter={b.get("alloc_retries_per_iter", 0.0) + b.get("launch_retries_per_iter", 0.0):6.2f}'
                 f'  resamples/iter={b.get("resamples_per_iter", 0.0):5.2f}'
                 f'  fallbacks/iter={b.get("fallbacks_per_iter", 0.0):5.2f}'
                 f'  recovered={b["recovered_frac"]:5.1%}')
    print(line)
PY
echo "wrote ${out_json}"
