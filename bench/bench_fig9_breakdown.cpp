// Fig. 9: runtime breakdown of the elementary kernels (shared-memory
// atomics, V100, n = 2^24 in the paper; scaled by GPUSEL_BENCH_MAX_LOG_N).
// Three stacked configurations as in the paper:
//   * "count w/o write":  sample + count (no oracles) + reduce
//   * "count w/ write":   sample + count (oracles) + reduce_offsets + filter
//   * "bipartition":      the QuickSelect Fig. 5 kernel
// reported as runtime per element [ns] for each elementary kernel.

#include <iostream>
#include <map>

#include "baselines/quickselect.hpp"
#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "core/count_kernel.hpp"
#include "core/filter_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "core/sample_kernel.hpp"
#include "data/distributions.hpp"

namespace {

using namespace gpusel;

std::map<std::string, double> kernel_times(bool write_oracles, std::size_t n, std::uint64_t rep) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_distinct, .seed = rep + 1});
    core::SampleSelectConfig cfg;
    cfg.num_buckets = 256;
    cfg.atomic_space = simt::AtomicSpace::shared;
    cfg.seed = rep * 3 + 1;

    const auto tree = core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host);
    auto oracles = dev.alloc<std::uint8_t>(write_oracles ? n : 0);
    auto totals = dev.alloc<std::int32_t>(256);
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    auto block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * 256);
    core::count_kernel<float>(dev, data, tree, oracles.span(), totals.span(), block_counts.span(),
                              cfg, simt::LaunchOrigin::host);
    core::reduce_kernel(dev, block_counts.span(), grid, 256, totals.span(), write_oracles,
                        simt::LaunchOrigin::host, cfg.block_dim);
    if (write_oracles) {
        auto prefix = dev.alloc<std::int32_t>(257);
        const auto bucket = core::select_bucket_kernel(dev, totals.span(), prefix.span(), n / 2,
                                                       simt::LaunchOrigin::host);
        auto out =
            dev.alloc<float>(static_cast<std::size_t>(totals[static_cast<std::size_t>(bucket)]));
        core::filter_kernel<float>(dev, data, oracles.span(), bucket, out.span(),
                                   block_counts.span(), 256, {}, cfg, simt::LaunchOrigin::host,
                                   grid);
    }

    std::map<std::string, double> by;
    for (const auto& p : dev.profiles()) by[p.name] += p.sim_ns;
    return by;
}

double bipartition_time(std::size_t n, std::uint64_t rep) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_distinct, .seed = rep + 1});
    auto out = dev.alloc<float>(n);
    auto counters = dev.alloc<std::int32_t>(2);
    counters[0] = counters[1] = 0;
    core::QuickSelectConfig qcfg;
    qcfg.atomic_space = simt::AtomicSpace::shared;
    const double t0 = dev.elapsed_ns();
    baselines::bipartition_kernel<float>(dev, data, data[n / 2], out.span(), counters.span(),
                                         qcfg, simt::LaunchOrigin::host);
    return dev.elapsed_ns() - t0;
}

}  // namespace

int main() {
    const auto scale = gpusel::bench::Scale::from_env();
    const std::size_t n = std::size_t{1} << scale.max_log_n;  // paper: 2^24
    std::cout << "Fig. 9 reproduction: runtime breakdown per elementary kernel\n"
              << "(V100, shared-memory atomics, n = " << n << ", single precision, "
              << scale.reps << " reps; values are ns per element)\n\n";

    const char* kernels[] = {"sample", "count", "count_nowrite", "reduce", "reduce_offsets",
                             "filter"};
    bench::Table t("Fig. 9: runtime per element [ns]");
    t.set_header({"configuration", "sample", "count", "reduce", "filter", "total"});

    auto add_config = [&](const char* name, bool write) {
        std::map<std::string, gpusel::stats::Accumulator> acc;
        for (std::size_t rep = 0; rep < scale.reps; ++rep) {
            for (const auto& [k, v] : kernel_times(write, n, rep)) acc[k].add(v);
        }
        auto per_elem = [&](const char* k) {
            return acc.count(k) != 0U ? acc[k].mean() / static_cast<double>(n) : 0.0;
        };
        const double sample = per_elem("sample");
        const double count = per_elem(write ? "count" : "count_nowrite");
        const double reduce = per_elem(write ? "reduce_offsets" : "reduce");
        const double filter = per_elem("filter");
        t.add_row({name, bench::fmt_fixed(sample, 4), bench::fmt_fixed(count, 4),
                   bench::fmt_fixed(reduce, 4), bench::fmt_fixed(filter, 4),
                   bench::fmt_fixed(sample + count + reduce + filter, 4)});
        (void)kernels;
    };
    add_config("count w/o write", false);
    add_config("count w/ write", true);

    gpusel::stats::Accumulator bip;
    for (std::size_t rep = 0; rep < scale.reps; ++rep) bip.add(bipartition_time(n, rep));
    t.add_row({"bipartition", "-", bench::fmt_fixed(bip.mean() / static_cast<double>(n), 4), "-",
               "-", bench::fmt_fixed(bip.mean() / static_cast<double>(n), 4)});
    t.print(std::cout);
    return 0;
}
