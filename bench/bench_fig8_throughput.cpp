// Fig. 8 (left & middle panels): throughput of sample-s / sample-g /
// quick-s / quick-g over the input size, single and double precision, on
// both architecture presets.  One table per (arch, precision) panel; each
// row is one n, each column one algorithm variant, cells are
// elements-per-second (mean over the repetitions, +/- sigma in a second
// block).

#include <iostream>
#include <string>

#include "baselines/quickselect.hpp"
#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "core/sample_select.hpp"
#include "data/distributions.hpp"

namespace {

using namespace gpusel;

template <typename T>
double run_sample(const simt::ArchSpec& arch, simt::AtomicSpace space, std::size_t n,
                  std::uint64_t rep) {
    simt::Device dev(arch, {.record_profiles = false});
    const auto data = data::generate<T>(
        {.n = n, .dist = data::Distribution::uniform_distinct, .seed = rep + 1});
    core::SampleSelectConfig cfg;
    cfg.num_buckets = 256;
    cfg.atomic_space = space;
    cfg.seed = rep * 7 + 3;
    return core::sample_select<T>(dev, data, data::random_rank(n, rep), cfg).sim_ns;
}

template <typename T>
double run_quick(const simt::ArchSpec& arch, simt::AtomicSpace space, std::size_t n,
                 std::uint64_t rep) {
    simt::Device dev(arch, {.record_profiles = false});
    const auto data = data::generate<T>(
        {.n = n, .dist = data::Distribution::uniform_distinct, .seed = rep + 1});
    core::QuickSelectConfig cfg;
    cfg.atomic_space = space;
    cfg.seed = rep * 7 + 3;
    return baselines::quick_select<T>(dev, data, data::random_rank(n, rep), cfg).sim_ns;
}

template <typename T>
void panel(const simt::ArchSpec& arch, const char* precision, const bench::Scale& scale) {
    bench::Table tp(std::string("Fig. 8: ") + arch.name + ", " + precision +
                    " -- throughput [elements/s]");
    tp.set_header({"n", "sample-s", "sample-g", "quick-s", "quick-g"});
    bench::Table sd(std::string("Fig. 8: ") + arch.name + ", " + precision +
                    " -- relative stddev of runtime");
    sd.set_header({"n", "sample-s", "sample-g", "quick-s", "quick-g"});

    for (const std::size_t n : scale.sizes()) {
        std::vector<std::string> tp_row{std::to_string(n)};
        std::vector<std::string> sd_row{std::to_string(n)};
        for (int variant = 0; variant < 4; ++variant) {
            const bool is_sample = variant < 2;
            const auto space =
                variant % 2 == 0 ? simt::AtomicSpace::shared : simt::AtomicSpace::global;
            const auto s = bench::repeat_ns(scale.reps, [&](std::size_t rep) {
                return is_sample ? run_sample<T>(arch, space, n, rep)
                                 : run_quick<T>(arch, space, n, rep);
            });
            tp_row.push_back(bench::fmt_eng(bench::throughput(n, s.mean)));
            sd_row.push_back(bench::fmt_pct(s.mean > 0 ? s.stddev / s.mean : 0.0, 1));
        }
        tp.add_row(std::move(tp_row));
        sd.add_row(std::move(sd_row));
    }
    tp.print(std::cout);
    sd.print(std::cout);
}

}  // namespace

int main() {
    const auto scale = gpusel::bench::Scale::from_env();
    std::cout << "Fig. 8 reproduction: selection throughput vs input size\n"
              << "(suffix -s: shared-memory atomics, -g: global-memory atomics;\n"
              << " uniform all-distinct input, random target rank, " << scale.reps
              << " repetitions)\n\n";
    for (const char* arch : {"K20Xm", "V100"}) {
        panel<float>(gpusel::simt::preset(arch), "single precision", scale);
        panel<double>(gpusel::simt::preset(arch), "double precision", scale);
    }
    return 0;
}
