// Sec. IV-A ablation: memory access volume and auxiliary storage.
// SampleSelect claims (1+eps)n element reads/writes and <= n/4 auxiliary
// storage (single precision; half for double); QuickSelect ~2n with ~n/2.
// We report the exact measured byte volumes from the simulator's counters.

#include <iostream>

#include "baselines/quickselect.hpp"
#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "core/approx_select.hpp"
#include "core/sample_select.hpp"
#include "data/distributions.hpp"

namespace {

using namespace gpusel;

struct Volume {
    double traffic_elem_units;
    double aux_rel;
    double atomics_per_elem;
};

template <typename T>
Volume sample_vol(std::size_t n) {
    simt::Device dev(simt::arch_v100(), {.record_profiles = false});
    const auto data =
        data::generate<T>({.n = n, .dist = data::Distribution::uniform_real, .seed = 3});
    core::SampleSelectConfig cfg;
    const auto r = core::sample_select<T>(dev, data, n / 2, cfg);
    const auto c = dev.counter_totals();
    return {static_cast<double>(c.total_global_bytes()) / sizeof(T) / static_cast<double>(n),
            static_cast<double>(r.aux_bytes) / static_cast<double>(n * sizeof(T)),
            static_cast<double>(c.total_atomic_ops()) / static_cast<double>(n)};
}

template <typename T>
Volume quick_vol(std::size_t n) {
    simt::Device dev(simt::arch_v100(), {.record_profiles = false});
    const auto data =
        data::generate<T>({.n = n, .dist = data::Distribution::uniform_real, .seed = 3});
    const auto r = baselines::quick_select<T>(dev, data, n / 2, {});
    const auto c = dev.counter_totals();
    return {static_cast<double>(c.total_global_bytes()) / sizeof(T) / static_cast<double>(n),
            static_cast<double>(r.aux_bytes) / static_cast<double>(n * sizeof(T)),
            static_cast<double>(c.total_atomic_ops()) / static_cast<double>(n)};
}

template <typename T>
Volume approx_vol(std::size_t n) {
    simt::Device dev(simt::arch_v100(), {.record_profiles = false});
    const auto data =
        data::generate<T>({.n = n, .dist = data::Distribution::uniform_real, .seed = 3});
    core::SampleSelectConfig cfg;
    cfg.num_buckets = 1024;
    auto dbuf = dev.alloc<T>(n);
    std::copy(data.begin(), data.end(), dbuf.data());
    dev.tracker().set_baseline();
    (void)core::approx_select_device<T>(dev, std::span<const T>(dbuf.span()), n / 2, cfg);
    const auto c = dev.counter_totals();
    return {static_cast<double>(c.total_global_bytes()) / sizeof(T) / static_cast<double>(n),
            static_cast<double>(dev.tracker().peak_above_baseline()) /
                static_cast<double>(n * sizeof(T)),
            static_cast<double>(c.total_atomic_ops()) / static_cast<double>(n)};
}

void emit(bench::Table& t, const char* name, const Volume& v) {
    t.add_row({name, bench::fmt_fixed(v.traffic_elem_units, 3), bench::fmt_fixed(v.aux_rel, 3),
               bench::fmt_fixed(v.atomics_per_elem, 3)});
}

}  // namespace

int main() {
    const auto scale = gpusel::bench::Scale::from_env();
    const std::size_t n = std::size_t{1} << scale.max_log_n;
    std::cout << "Sec. IV-A reproduction: measured memory volume & auxiliary storage (n = " << n
              << ")\n(traffic in element-size units per input element; aux relative to the\n"
              << " input array size; paper claims: SampleSelect (1+eps)n & <= n/4 aux,\n"
              << " QuickSelect ~2n & ~n/2 aux)\n\n";

    bench::Table t("measured volumes");
    t.set_header({"algorithm", "traffic [elem units / elem]", "aux / input", "atomics / elem"});
    emit(t, "SampleSelect exact (float)", sample_vol<float>(n));
    emit(t, "SampleSelect exact (double)", sample_vol<double>(n));
    emit(t, "SampleSelect approx b=1024 (float)", approx_vol<float>(n));
    emit(t, "QuickSelect (float)", quick_vol<float>(n));
    emit(t, "QuickSelect (double)", quick_vol<double>(n));
    t.print(std::cout);
    return 0;
}
