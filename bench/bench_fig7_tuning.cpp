// Fig. 7: parameter-tuning benchmarks (single precision).  Three panels per
// architecture: number of buckets, number of threads per block, and loop
// unrolling depth, each as SampleSelect throughput over the input size.
// As in the paper, the K20Xm panels use global-memory atomics and the V100
// panels shared-memory atomics (the respective fastest configuration).

#include <iostream>
#include <string>
#include <vector>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "core/sample_select.hpp"
#include "data/distributions.hpp"

namespace {

using namespace gpusel;

double run(const simt::ArchSpec& arch, const core::SampleSelectConfig& cfg, std::size_t n,
           std::uint64_t rep) {
    simt::Device dev(arch, {.record_profiles = false});
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_distinct, .seed = rep + 1});
    core::SampleSelectConfig c = cfg;
    c.seed = rep * 13 + 5;
    return core::sample_select<float>(dev, data, data::random_rank(n, rep), c).sim_ns;
}

void panel(const simt::ArchSpec& arch, simt::AtomicSpace space, const std::string& title,
           const std::vector<std::pair<std::string, core::SampleSelectConfig>>& configs,
           const bench::Scale& scale) {
    bench::Table t("Fig. 7: " + arch.name + " (" +
                   (space == simt::AtomicSpace::shared ? "shared" : "global") + " atomics) -- " +
                   title + " [elements/s]");
    std::vector<std::string> header{"n"};
    for (const auto& [name, cfg] : configs) header.push_back(name);
    t.set_header(std::move(header));
    for (const std::size_t n : scale.sizes()) {
        std::vector<std::string> row{std::to_string(n)};
        for (const auto& [name, cfg] : configs) {
            const auto s = bench::repeat_ns(
                scale.reps, [&](std::size_t rep) { return run(arch, cfg, n, rep); });
            row.push_back(bench::fmt_eng(bench::throughput(n, s.mean)));
        }
        t.add_row(std::move(row));
    }
    t.print(std::cout);
}

void arch_panels(const simt::ArchSpec& arch, simt::AtomicSpace space, const bench::Scale& scale) {
    core::SampleSelectConfig base;
    base.atomic_space = space;

    std::vector<std::pair<std::string, core::SampleSelectConfig>> buckets;
    for (int b : {64, 128, 256}) {
        auto c = base;
        c.num_buckets = b;
        buckets.emplace_back("b=" + std::to_string(b), c);
    }
    panel(arch, space, "number of buckets", buckets, scale);

    std::vector<std::pair<std::string, core::SampleSelectConfig>> threads;
    for (int bd : {256, 512, 1024}) {
        auto c = base;
        c.num_buckets = 256;
        c.block_dim = bd;
        threads.emplace_back("t=" + std::to_string(bd), c);
    }
    panel(arch, space, "threads per block", threads, scale);

    std::vector<std::pair<std::string, core::SampleSelectConfig>> unrolls;
    for (int u : {1, 2, 4, 8}) {
        auto c = base;
        c.num_buckets = 256;
        c.unroll = u;
        unrolls.emplace_back("u=" + std::to_string(u), c);
    }
    panel(arch, space, "loop unrolling depth", unrolls, scale);
}

}  // namespace

int main() {
    const auto scale = gpusel::bench::Scale::from_env();
    std::cout << "Fig. 7 reproduction: SampleSelect parameter tuning (single precision, "
              << scale.reps << " reps)\n\n";
    arch_panels(gpusel::simt::preset("K20Xm"), simt::AtomicSpace::global, scale);
    arch_panels(gpusel::simt::preset("V100"), simt::AtomicSpace::shared, scale);
    return 0;
}
