// Sec. V-D: comparison with BucketSelect (Alabi et al.), the strongest
// prior GPU selection algorithm.  The paper reports 25.6 ms (SampleSelect,
// K20Xm) vs 40.16 ms (BucketSelect, C2070) for n = 2^27 uniform single
// precision -- on *different* GPUs, so only the qualitative statement
// carries: BucketSelect is competitive on its optimal (uniform) inputs but
// collapses on adversarial value distributions, which cannot affect the
// comparison-based SampleSelect.  RadixSelect is included as the other
// Alabi et al. variant.

#include <iostream>

#include "baselines/bucketselect.hpp"
#include "baselines/radixselect.hpp"
#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "core/sample_select.hpp"
#include "data/distributions.hpp"

namespace {

using namespace gpusel;

struct Row {
    double ns = 0.0;
    double levels = 0.0;
};

Row run(const std::string& algo, const std::vector<float>& data, std::size_t rank) {
    simt::Device dev(simt::arch_v100(), {.record_profiles = false});
    if (algo == "SampleSelect") {
        const auto r = core::sample_select<float>(dev, data, rank, {});
        return {r.sim_ns, static_cast<double>(r.levels)};
    }
    if (algo == "BucketSelect") {
        const auto r = baselines::bucket_select<float>(dev, data, rank, {});
        return {r.sim_ns, static_cast<double>(r.levels)};
    }
    const auto r = baselines::radix_select<float>(dev, data, rank, {});
    return {r.sim_ns, static_cast<double>(r.levels)};
}

}  // namespace

int main() {
    const auto scale = gpusel::bench::Scale::from_env();
    const std::size_t n = std::size_t{1} << scale.max_log_n;  // paper: 2^27
    std::cout << "Sec. V-D reproduction: SampleSelect vs BucketSelect/RadixSelect, V100, n = "
              << n << " (single precision, " << scale.reps << " reps)\n\n";

    const std::pair<const char*, data::Distribution> workloads[] = {
        {"uniform (BucketSelect's optimum)", data::Distribution::uniform_real},
        {"adversarial cluster", data::Distribution::adversarial_cluster},
        {"adversarial geometric", data::Distribution::adversarial_geometric},
    };

    for (const auto& [wname, dist] : workloads) {
        bench::Table t(std::string("workload: ") + wname);
        t.set_header({"algorithm", "time [ms]", "throughput [elem/s]", "levels"});
        for (const char* algo : {"SampleSelect", "BucketSelect", "RadixSelect"}) {
            stats::Accumulator ns;
            stats::Accumulator levels;
            for (std::size_t rep = 0; rep < scale.reps; ++rep) {
                const auto data = data::generate<float>({.n = n, .dist = dist, .seed = rep + 1});
                const auto r = run(algo, data, data::random_rank(n, rep));
                ns.add(r.ns);
                levels.add(r.levels);
            }
            t.add_row({algo, bench::fmt_fixed(ns.mean() / 1e6, 3),
                       bench::fmt_eng(bench::throughput(n, ns.mean())),
                       bench::fmt_fixed(levels.mean(), 1)});
        }
        t.print(std::cout);
    }
    std::cout << "(paper's qualitative claim: competitive on uniform inputs, immune to\n"
              << " adversarial value distributions that degrade value-range bucketing)\n";
    return 0;
}
