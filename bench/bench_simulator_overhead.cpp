// google-benchmark harness for the *host-side* cost of the SIMT simulator
// itself.  The paper-figure binaries report simulated GPU time; this one
// measures how many input elements per wall-clock second the simulation
// substrate sustains, so regressions in the simulator hot paths (warp
// tiles, histogram atomics, collision accounting) are caught.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "baselines/quickselect.hpp"
#include "core/argselect.hpp"
#include "core/batch_executor.hpp"
#include "core/approx_select.hpp"
#include "core/count_kernel.hpp"
#include "core/radix_backend.hpp"
#include "core/reduce_kernel.hpp"
#include "core/sample_kernel.hpp"
#include "core/sample_select.hpp"
#include "core/shard_select.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simt/fault.hpp"
#include "simt/topology.hpp"

namespace {

using namespace gpusel;

void BM_CountKernel(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const bool warp_agg = state.range(1) != 0;
    simt::Device dev(simt::arch_v100(), {.host_workers = simt::default_host_workers(),
                                         .record_profiles = false});
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 1});
    core::SampleSelectConfig cfg;
    cfg.warp_aggregation = warp_agg;
    const auto tree = core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host);
    auto oracles = dev.alloc<std::uint8_t>(n);
    auto totals = dev.alloc<std::int32_t>(256);
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    auto block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * 256);
    for (auto _ : state) {
        core::count_kernel<float>(dev, data, tree, oracles.span(), totals.span(),
                                  block_counts.span(), cfg, simt::LaunchOrigin::host);
        benchmark::DoNotOptimize(totals.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CountKernel)
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 22, 0})
    ->Args({1 << 22, 1});

void BM_SampleSelectEndToEnd(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 2});
    std::uint64_t allocs = 0;
    std::uint64_t reuses = 0;
    std::size_t aux_bytes = 0;
    for (auto _ : state) {
        simt::Device dev(simt::arch_v100(), {.record_profiles = false});
        auto res = core::sample_select<float>(dev, data, n / 2, {});
        benchmark::DoNotOptimize(res.value);
        allocs += dev.tracker().alloc_count();
        reuses += dev.tracker().reuse_count();
        aux_bytes = res.aux_bytes;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs_per_iter"] = static_cast<double>(allocs) / iters;
    state.counters["reuses_per_iter"] = static_cast<double>(reuses) / iters;
    state.counters["peak_aux_bytes"] = static_cast<double>(aux_bytes);
}
BENCHMARK(BM_SampleSelectEndToEnd)->Arg(1 << 16)->Arg(1 << 18);

// Same workload with the device -- and therefore the memory pool -- hoisted
// out of the loop: every selection after the first draws its scratch from
// the arena's free lists, so allocs_per_iter collapses (the pool's value
// proposition) while the simulated event stream stays identical.
void BM_SampleSelectWarmPool(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 2});
    simt::Device dev(simt::arch_v100(), {.record_profiles = false});
    {
        // Warm the size classes once outside the timed region.
        auto warm = core::sample_select<float>(dev, data, n / 2, {});
        benchmark::DoNotOptimize(warm.value);
    }
    const std::uint64_t a0 = dev.tracker().alloc_count();
    const std::uint64_t r0 = dev.tracker().reuse_count();
    std::size_t aux_bytes = 0;
    for (auto _ : state) {
        auto res = core::sample_select<float>(dev, data, n / 2, {});
        benchmark::DoNotOptimize(res.value);
        aux_bytes = res.aux_bytes;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs_per_iter"] =
        static_cast<double>(dev.tracker().alloc_count() - a0) / iters;
    state.counters["reuses_per_iter"] =
        static_cast<double>(dev.tracker().reuse_count() - r0) / iters;
    state.counters["peak_aux_bytes"] = static_cast<double>(aux_bytes);
}
BENCHMARK(BM_SampleSelectWarmPool)->Arg(1 << 16)->Arg(1 << 18);

// Selection under an injected 2% alloc/launch fault schedule: measures the
// wall-clock cost of the bounded-retry machinery (docs/robustness.md) and
// surfaces the Device's RobustnessCounters in the JSON so the self-healing
// rate is tracked alongside throughput.  recovered_frac < 1 would mean the
// retry budget no longer absorbs this fault rate -- a robustness regression.
void BM_SampleSelectUnderFaults(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 5});
    simt::FaultSpec spec;
    spec.seed = 17;
    spec.alloc_rate = 0.02;
    spec.launch_rate = 0.02;
    std::uint64_t recovered = 0;
    std::uint64_t total = 0;
    simt::RobustnessCounters rc;
    for (auto _ : state) {
        simt::Device dev(simt::arch_v100(), {.record_profiles = false});
        spec.seed += 1;  // a fresh deterministic schedule per iteration
        dev.set_faults(spec);
        auto res = core::try_sample_select<float>(dev, data, n / 2, {});
        benchmark::DoNotOptimize(res);
        if (res.ok()) ++recovered;
        ++total;
        rc += dev.robustness();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    const auto iters = static_cast<double>(state.iterations());
    state.counters["alloc_retries_per_iter"] = static_cast<double>(rc.alloc_retries) / iters;
    state.counters["launch_retries_per_iter"] = static_cast<double>(rc.launch_retries) / iters;
    state.counters["resamples_per_iter"] = static_cast<double>(rc.resamples) / iters;
    state.counters["fallbacks_per_iter"] = static_cast<double>(rc.fallbacks) / iters;
    state.counters["recovered_frac"] =
        total ? static_cast<double>(recovered) / static_cast<double>(total) : 1.0;
}
BENCHMARK(BM_SampleSelectUnderFaults)->Arg(1 << 16)->Arg(1 << 18);

// Selection with SimTSan armed (strict mode): measures the wall-clock cost
// of the shadow-memory checks on every instrumented access.  The simulated
// event stream is identical by contract (test_sanitizer golden test); only
// host time changes.  san_slowdown_x is the acceptance metric for the
// sanitizer: it must stay within ~3x of the uninstrumented run.
void BM_SampleSelectUnderSan(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 2});

    // Baseline: wall-clock for the identical selection with the sanitizer
    // off, measured outside the benchmark loop (same device lifecycle).
    const auto wall = [&](simt::SanMode mode) {
        simt::Device dev(simt::arch_v100(), {.record_profiles = false});
        dev.set_sanitizer(mode);
        const auto t0 = std::chrono::steady_clock::now();
        auto res = core::sample_select<float>(dev, data, n / 2, {});
        benchmark::DoNotOptimize(res.value);
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    };
    double off_s = 0.0;
    double on_s = 0.0;
    constexpr int kProbes = 5;
    for (int i = 0; i < kProbes; ++i) {
        off_s += wall(simt::SanMode::off);
        on_s += wall(simt::SanMode::strict);
    }

    std::uint64_t checks = 0;
    for (auto _ : state) {
        simt::Device dev(simt::arch_v100(), {.record_profiles = false});
        dev.set_sanitizer(simt::SanMode::strict);
        auto res = core::sample_select<float>(dev, data, n / 2, {});
        benchmark::DoNotOptimize(res.value);
        checks += dev.sanitizer()->checks();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.counters["san_slowdown_x"] = off_s > 0.0 ? on_s / off_s : 0.0;
    state.counters["san_checks_per_iter"] =
        static_cast<double>(checks) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SampleSelectUnderSan)->Arg(1 << 16)->Arg(1 << 18);

// Selection with StreamSan armed (strict mode): measures the wall-clock
// cost of the happens-before bookkeeping -- per-access byte-range folds on
// the kernel side plus the per-launch history analysis on the host.  The
// simulated event stream is identical by contract (the test_streamsan
// golden test); streamsan_slowdown_x is the acceptance metric and must
// stay within 1.5x of the uninstrumented run (docs/streamsan.md) -- far
// below SimTSan's ~3x, since StreamSan keeps no shadow memory.
void BM_SampleSelectUnderStreamSan(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 2});

    const auto wall = [&](simt::StreamSanMode mode) {
        simt::Device dev(simt::arch_v100(), {.record_profiles = false});
        dev.set_stream_sanitizer(mode);
        const auto t0 = std::chrono::steady_clock::now();
        auto res = core::sample_select<float>(dev, data, n / 2, {});
        benchmark::DoNotOptimize(res.value);
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    };
    double off_s = 0.0;
    double on_s = 0.0;
    constexpr int kProbes = 5;
    for (int i = 0; i < kProbes; ++i) {
        off_s += wall(simt::StreamSanMode::off);
        on_s += wall(simt::StreamSanMode::strict);
    }

    std::uint64_t checks = 0;
    for (auto _ : state) {
        simt::Device dev(simt::arch_v100(), {.record_profiles = false});
        dev.set_stream_sanitizer(simt::StreamSanMode::strict);
        auto res = core::sample_select<float>(dev, data, n / 2, {});
        benchmark::DoNotOptimize(res.value);
        checks += dev.stream_sanitizer()->checks();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.counters["streamsan_slowdown_x"] = off_s > 0.0 ? on_s / off_s : 0.0;
    state.counters["streamsan_checks_per_iter"] =
        static_cast<double>(checks) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SampleSelectUnderStreamSan)->Arg(1 << 16)->Arg(1 << 18);

// Stream-parallel batched selection (core/batch_executor.hpp): 8 problems
// fanned over range(1) streams.  Measures the host-side cost of driving the
// fan (per-stream arenas, event fork/join) and surfaces the simulated
// overlap factor -- overlap_x should approach the stream count on the
// recursive path and must stay >= 1.
void BM_BatchedSelectStreams(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const int streams = static_cast<int>(state.range(1));
    constexpr std::size_t kProblems = 8;
    std::vector<std::vector<float>> inputs;
    inputs.reserve(kProblems);
    std::vector<core::BatchProblem<float>> problems;
    for (std::size_t i = 0; i < kProblems; ++i) {
        inputs.push_back(data::generate<float>(
            {.n = n, .dist = data::Distribution::uniform_real, .seed = 6 + i}));
        problems.push_back({inputs.back(), n / 2});
    }
    double overlap = 1.0;
    for (auto _ : state) {
        simt::Device dev(simt::arch_v100(), {.record_profiles = false});
        core::BatchExecutor<float> exec(dev, {}, {.streams = streams});
        auto res = exec.run(problems);
        benchmark::DoNotOptimize(res);
        if (res.ok()) overlap = res.value().overlap_x();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * kProblems));
    state.counters["overlap_x"] = overlap;
    state.counters["streams"] = static_cast<double>(streams);
}
BENCHMARK(BM_BatchedSelectStreams)->Args({1 << 16, 1})->Args({1 << 16, 4});

void BM_QuickSelectEndToEnd(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 3});
    for (auto _ : state) {
        simt::Device dev(simt::arch_v100(), {.record_profiles = false});
        auto res = baselines::quick_select<float>(dev, data, n / 2, {});
        benchmark::DoNotOptimize(res.value);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuickSelectEndToEnd)->Arg(1 << 16)->Arg(1 << 18);

void BM_ApproxSelect(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 4});
    core::SampleSelectConfig cfg;
    cfg.num_buckets = 1024;
    for (auto _ : state) {
        simt::Device dev(simt::arch_v100(), {.record_profiles = false});
        auto res = core::approx_select<float>(dev, data, n / 2, cfg);
        benchmark::DoNotOptimize(res.value);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ApproxSelect)->Arg(1 << 18);

// The masked compress-store tile primitive itself (simt/simd.hpp): stream
// oracle bytes + elements through byte_eq_mask + compress_store at a fixed
// SIMD tier (range(1): 0 scalar, 1 sse2, 2 avx2, 3 avx512).  The scalar row
// is the denominator for the vectorization win -- the AVX2 row must hold
// >= 1.5x its items_per_second (PR acceptance; the CI gate then keeps the
// whole family from regressing).  Tiers the host cannot run are skipped.
void BM_FilterCompressStore(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto want = static_cast<simt::simd::Level>(state.range(1));
    simt::simd::set_level(want);
    if (simt::simd::active_level() != want) {
        simt::simd::set_enabled(true);
        state.SkipWithError("SIMD tier unsupported on this host");
        return;
    }
    constexpr std::uint8_t kBucket = 3;  // 1-in-8 selectivity
    const auto src = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 8});
    std::vector<std::uint8_t> oracle(n);
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    for (auto& o : oracle) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        o = static_cast<std::uint8_t>((s >> 33) & 7u);
    }
    std::vector<float> dst(n);
    std::size_t kept = 0;
    for (auto _ : state) {
        std::size_t out = 0;
        for (std::size_t i = 0; i < n; i += simt::simd::kTileLanes) {
            const int lanes = static_cast<int>(
                std::min<std::size_t>(simt::simd::kTileLanes, n - i));
            const std::uint32_t mask =
                simt::simd::byte_eq_mask(oracle.data() + i, kBucket, lanes);
            out += static_cast<std::size_t>(
                simt::simd::compress_store(src.data() + i, mask, lanes, dst.data() + out));
        }
        benchmark::DoNotOptimize(dst.data());
        kept = out;
    }
    simt::simd::set_enabled(true);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.counters["selectivity"] =
        static_cast<double>(kept) / static_cast<double>(n);
    state.SetLabel(simt::simd::level_name(want));
}
BENCHMARK(BM_FilterCompressStore)
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 2})
    ->Args({1 << 20, 3});

// End-to-end argselect (core/argselect.hpp): the float pipeline widened to
// (key, index) pairs, so this row tracks the host-side cost of the 8-byte
// element path -- compress-store tiles, pair search trees, pair bitonic.
void BM_Argselect(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto keys = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 9});
    for (auto _ : state) {
        simt::Device dev(simt::arch_v100(), {.record_profiles = false});
        auto res = core::argselect(dev, keys, n / 2, {});
        benchmark::DoNotOptimize(res.index);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Argselect)->Arg(1 << 16)->Arg(1 << 18);

// The promoted radix top-k backend (core/radix_backend.hpp) driven
// directly over staged data: tracks the simulated cost of the fused
// multi-digit histogram + filter-topk descent, independent of planner
// routing.  Manual timing feeds the device's simulated clock to the
// harness, so items_per_second expresses selection throughput under the
// timing model rather than host-side simulation overhead.
void BM_RadixTopK(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t k = n / 4;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 12});
    std::size_t levels = 0;
    for (auto _ : state) {
        simt::Device dev(simt::arch_v100(), {.record_profiles = false});
        core::SampleSelectConfig cfg;
        core::PipelineContext ctx(dev, cfg);
        auto staged = core::DataHolder<float>::stage(ctx, data);
        auto res = core::try_radix_topk_staged<float>(dev, std::move(staged), k, cfg);
        benchmark::DoNotOptimize(res);
        if (res.ok()) levels = res.value().levels;
        state.SetIterationTime(dev.elapsed_ns() * 1e-9);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.counters["levels"] = static_cast<double>(levels);
}
BENCHMARK(BM_RadixTopK)->Arg(1 << 16)->Arg(1 << 18)->UseManualTime();

// Adversarial-distribution top-k through the planned front-end
// (docs/planner.md).  range(1) picks the distribution (0 = all-equal,
// 1 = heavy duplicates), range(2) the routing (0 = planner auto, which
// must pick radix on these inputs; 1 = GPUSEL_BACKEND=sample, the
// pre-planner behavior).  Manual timing on the simulated clock: the
// auto rows' items_per_second must hold >= 2x their forced-sample
// siblings (PR acceptance; the CI gate then keeps the family from
// regressing).  The backend_* counters feed the planner-coverage step
// of tools/check_bench_regression.py: across the whole sweep every
// backend must be selected at least once (the small-n row routes to
// bitonic).
void BM_PlannerAdversarial(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const bool heavy_dup = state.range(1) != 0;
    const bool force_sample = state.range(2) != 0;
    const std::size_t k = n / 2;  // deep top-k: the sampler's worst case
    const auto data =
        heavy_dup ? data::generate<float>({.n = n,
                                           .dist = data::Distribution::uniform_distinct,
                                           .distinct_values = 2,
                                           .seed = 14})
                  : std::vector<float>(n, 1.5f);
    if (force_sample) {
        ::setenv("GPUSEL_BACKEND", "sample", 1);
    } else {
        ::unsetenv("GPUSEL_BACKEND");
    }
    simt::RobustnessCounters rc;
    for (auto _ : state) {
        simt::Device dev(simt::arch_v100(), {.record_profiles = false});
        auto res = core::topk_largest<float>(dev, data, k, {});
        benchmark::DoNotOptimize(res.threshold);
        rc += dev.robustness();
        state.SetIterationTime(dev.elapsed_ns() * 1e-9);
    }
    ::unsetenv("GPUSEL_BACKEND");
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.counters["backend_sample"] = static_cast<double>(rc.backend_sample);
    state.counters["backend_radix"] = static_cast<double>(rc.backend_radix);
    state.counters["backend_bitonic"] = static_cast<double>(rc.backend_bitonic);
    state.SetLabel(std::string(heavy_dup ? "heavy_dup" : "all_equal") +
                   (force_sample ? "/forced_sample" : "/auto"));
}
BENCHMARK(BM_PlannerAdversarial)
    ->Args({1 << 16, 0, 0})
    ->Args({1 << 16, 0, 1})
    ->Args({1 << 16, 1, 0})
    ->Args({1 << 16, 1, 1})
    ->Args({512, 0, 0})  // small n: the planner's bitonic lane
    ->UseManualTime();

// Sharded multi-device selection (core/shard_select.hpp): one out-of-core
// selection per iteration over a group whose modeled per-device memory is
// far below n, so every iteration runs the full candidate/merge/count/
// filter pipeline across the modeled interconnect.  The group lives
// outside the timing loop (constructing N devices is setup, not the work
// under test).  The link_bytes_per_iter counter is what the bench
// regression gate's shard-coverage step requires: it proves the benchmark
// really moved bytes over the links rather than degenerating to one shard.
void BM_ShardedSelect(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const int devices = static_cast<int>(state.range(1));
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 7});
    simt::TopologySpec spec;
    spec.num_devices = devices;
    spec.arch = simt::arch_v100();
    // 256 KiB modeled capacity -> 64 KiB staging -> 16384 floats/shard.
    spec.mem_capacity_bytes = 256 * 1024;
    spec.device_opts = {.record_profiles = false};
    simt::DeviceGroup group(spec);
    core::ShardSelectConfig cfg;
    std::uint64_t link_bytes = 0;
    std::uint64_t launches = 0;
    double sim_ns = 0.0;
    std::size_t shards = 0;
    for (auto _ : state) {
        auto res = core::try_sharded_select<float>(group, data, n / 2, cfg);
        if (!res.ok()) {
            state.SkipWithError(res.status().message.c_str());
            return;
        }
        benchmark::DoNotOptimize(res.value().value);
        link_bytes += res.value().acct.link_bytes;
        launches += res.value().acct.launches;
        sim_ns += res.value().acct.sim_ns;
        shards = res.value().acct.shards;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    const auto iters = static_cast<double>(state.iterations());
    state.counters["link_bytes_per_iter"] = static_cast<double>(link_bytes) / iters;
    state.counters["launches_per_iter"] = static_cast<double>(launches) / iters;
    state.counters["sim_ms_per_iter"] = sim_ns / iters / 1e6;
    state.counters["shards"] = static_cast<double>(shards);
    state.counters["devices"] = static_cast<double>(devices);
}
BENCHMARK(BM_ShardedSelect)->Args({1 << 18, 2})->Args({1 << 18, 4});

}  // namespace
