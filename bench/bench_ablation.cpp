// Ablation benchmarks for the design choices of Sec. IV (DESIGN.md §5):
//
//   A. sample size (Sec. IV-H b): splitter quality -> bucket imbalance ->
//      recursion depth and total time, plus the Mosteller-predicted
//      imbalance.
//   B. base-case size (Sec. IV-H f): the paper expects negligible impact.
//   C. dynamic parallelism (Sec. IV-E): device-side tail launches vs a
//      host-driven recursion paying full launch latency per kernel.
//   D. pivot sample size for QuickSelect: recursion depth vs pivot cost.

#include <iostream>

#include "baselines/quickselect.hpp"
#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "core/approx_select.hpp"
#include "core/sample_select.hpp"
#include "data/distributions.hpp"
#include "simt/trace.hpp"

namespace {

using namespace gpusel;

void ablation_sample_size(std::size_t n, const bench::Scale& scale) {
    bench::Table t("A. sample size (V100, shared, b=256, n=" + std::to_string(n) + ")");
    t.set_header({"sample size", "levels (mean)", "max bucket / ideal", "time [ms]"});
    for (const int s : {256, 512, 1024, 2048, 4096}) {
        stats::Accumulator levels;
        stats::Accumulator imbalance;
        stats::Accumulator ns;
        for (std::size_t rep = 0; rep < scale.reps; ++rep) {
            simt::Device dev(simt::arch_v100(), {.record_profiles = false});
            const auto data = data::generate<float>(
                {.n = n, .dist = data::Distribution::uniform_real, .seed = rep + 1});
            core::SampleSelectConfig cfg;
            cfg.sample_size = s;
            cfg.seed = rep * 3 + 1;
            const auto r = core::sample_select<float>(dev, data, data::random_rank(n, rep), cfg);
            levels.add(static_cast<double>(r.levels));
            ns.add(r.sim_ns);
            // measure first-level imbalance with the approximate variant
            simt::Device dev2(simt::arch_v100(), {.record_profiles = false});
            const auto a = core::approx_select<float>(dev2, data, n / 2, cfg);
            imbalance.add(static_cast<double>(a.max_bucket) /
                          (static_cast<double>(n) / 256.0));
        }
        t.add_row({std::to_string(s), bench::fmt_fixed(levels.mean(), 2),
                   bench::fmt_fixed(imbalance.mean(), 2),
                   bench::fmt_fixed(ns.mean() / 1e6, 3)});
    }
    t.print(std::cout);
    std::cout << "(larger samples tighten the splitters: max-bucket/ideal approaches 1;\n"
              << " Sec. II-B predicts relative splitter-rank sd = sqrt(p(1-p)/s))\n\n";
}

void ablation_base_case(std::size_t n, const bench::Scale& scale) {
    bench::Table t("B. base-case size (V100, shared, b=256, n=" + std::to_string(n) + ")");
    t.set_header({"base case", "levels", "time [ms]"});
    for (const std::size_t bc : {std::size_t{256}, std::size_t{1024}, std::size_t{4096}}) {
        stats::Accumulator levels;
        stats::Accumulator ns;
        for (std::size_t rep = 0; rep < scale.reps; ++rep) {
            simt::Device dev(simt::arch_v100(), {.record_profiles = false});
            const auto data = data::generate<float>(
                {.n = n, .dist = data::Distribution::uniform_real, .seed = rep + 1});
            core::SampleSelectConfig cfg;
            cfg.base_case_size = bc;
            cfg.seed = rep * 3 + 1;
            const auto r = core::sample_select<float>(dev, data, data::random_rank(n, rep), cfg);
            levels.add(static_cast<double>(r.levels));
            ns.add(r.sim_ns);
        }
        t.add_row({std::to_string(bc), bench::fmt_fixed(levels.mean(), 2),
                   bench::fmt_fixed(ns.mean() / 1e6, 3)});
    }
    t.print(std::cout);
    std::cout << "(the paper expects negligible impact -- the input shrinks exponentially)\n\n";
}

void ablation_dynamic_parallelism(std::size_t n, const bench::Scale& scale) {
    // Device launches cost device_launch_ns; a host-driven recursion would
    // pay host_launch_ns for every kernel.  Reconstruct the host-driven
    // cost from the launch profile.
    bench::Table t("C. dynamic parallelism (V100, shared, b=16 to force deep recursion)");
    t.set_header({"n", "launches", "DP time [ms]", "host-driven [ms]", "saving"});
    for (const std::size_t size : {n / 16, n}) {
        stats::Accumulator dp_ns;
        stats::Accumulator host_ns;
        stats::Accumulator launches;
        for (std::size_t rep = 0; rep < scale.reps; ++rep) {
            simt::Device dev(simt::arch_v100());
            const auto data = data::generate<float>(
                {.n = size, .dist = data::Distribution::uniform_real, .seed = rep + 1});
            core::SampleSelectConfig cfg;
            cfg.num_buckets = 16;
            cfg.seed = rep * 3 + 1;
            const auto r =
                core::sample_select<float>(dev, data, data::random_rank(size, rep), cfg);
            dp_ns.add(r.sim_ns);
            launches.add(static_cast<double>(r.launches));
            double host_total = 0;
            for (const auto& p : dev.profiles()) {
                host_total += p.sim_ns;
                if (p.origin == simt::LaunchOrigin::device) {
                    host_total += dev.arch().host_launch_ns - dev.arch().device_launch_ns;
                }
            }
            host_ns.add(host_total);
        }
        t.add_row({std::to_string(size), bench::fmt_fixed(launches.mean(), 1),
                   bench::fmt_fixed(dp_ns.mean() / 1e6, 3),
                   bench::fmt_fixed(host_ns.mean() / 1e6, 3),
                   bench::fmt_pct(1.0 - dp_ns.mean() / host_ns.mean(), 1)});
    }
    t.print(std::cout);
}

void ablation_pivot_sample(std::size_t n, const bench::Scale& scale) {
    bench::Table t("D. QuickSelect pivot sample size (V100, shared, n=" + std::to_string(n) +
                   ")");
    t.set_header({"pivot sample", "levels", "time [ms]"});
    for (const int ps : {1, 8, 32, 128, 1024}) {
        stats::Accumulator levels;
        stats::Accumulator ns;
        for (std::size_t rep = 0; rep < scale.reps; ++rep) {
            simt::Device dev(simt::arch_v100(), {.record_profiles = false});
            const auto data = data::generate<float>(
                {.n = n, .dist = data::Distribution::uniform_real, .seed = rep + 1});
            core::QuickSelectConfig cfg;
            cfg.pivot_sample_size = ps;
            cfg.seed = rep * 3 + 1;
            const auto r =
                baselines::quick_select<float>(dev, data, data::random_rank(n, rep), cfg);
            levels.add(static_cast<double>(r.levels));
            ns.add(r.sim_ns);
        }
        t.add_row({std::to_string(ps), bench::fmt_fixed(levels.mean(), 2),
                   bench::fmt_fixed(ns.mean() / 1e6, 3)});
    }
    t.print(std::cout);
    std::cout << "(tiny pivot samples give bad splits -> more levels; huge ones pay\n"
              << " bitonic sorting cost without improving the expected split further)\n";
}

}  // namespace

int main() {
    const auto scale = gpusel::bench::Scale::from_env();
    const std::size_t n = std::size_t{1} << scale.max_log_n;
    std::cout << "Ablations of Sec. IV design choices (" << scale.reps << " reps)\n\n";
    ablation_sample_size(n, scale);
    ablation_base_case(n, scale);
    ablation_dynamic_parallelism(n, scale);
    ablation_pivot_sample(n, scale);
    return 0;
}
