// Fig. 8 (right panels): element-repetition impact on the count kernel.
// Runs only the count kernel (plus the memset it needs in global mode) over
// inputs drawn from d distinct values, for the four communication
// strategies {shared, global} x {with, without warp-aggregation}, on both
// architectures.  Throughput per strategy over d shows the atomic-collision
// collapse and how warp-aggregation mitigates it (Sec. V-E).

#include <iostream>
#include <string>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "core/count_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "core/sample_kernel.hpp"
#include "data/distributions.hpp"

namespace {

using namespace gpusel;

double run_count(const simt::ArchSpec& arch, simt::AtomicSpace space, bool warp_agg,
                 std::size_t n, std::size_t distinct, std::uint64_t rep) {
    simt::Device dev(arch, {.record_profiles = false});
    const auto data = data::generate<float>({.n = n,
                                             .dist = data::Distribution::uniform_distinct,
                                             .distinct_values = distinct,
                                             .seed = rep + 1});
    core::SampleSelectConfig cfg;
    cfg.num_buckets = 256;
    cfg.atomic_space = space;
    cfg.warp_aggregation = warp_agg;
    cfg.seed = rep * 11 + 7;
    const auto tree = core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host);

    auto oracles = dev.alloc<std::uint8_t>(n);
    auto totals = dev.alloc<std::int32_t>(256);
    const int grid = simt::suggest_grid(arch, n, cfg.block_dim, cfg.unroll);
    simt::DeviceBuffer<std::int32_t> block_counts;
    if (space == simt::AtomicSpace::shared) {
        block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * 256);
    } else {
        core::launch_memset32(dev, totals.span(), simt::LaunchOrigin::host);
    }
    const double t0 = dev.elapsed_ns();
    core::count_kernel<float>(dev, data, tree, oracles.span(), totals.span(),
                              block_counts.span(), cfg, simt::LaunchOrigin::host);
    return dev.elapsed_ns() - t0;
}

void panel(const simt::ArchSpec& arch, std::size_t n, const bench::Scale& scale) {
    bench::Table t("Fig. 8 (right): " + arch.name + " -- count-kernel throughput vs distinct "
                   "values (n = " + std::to_string(n) + ", single precision) [elements/s]");
    t.set_header({"distinct d", "shared w/o agg", "shared w/ agg", "global w/ agg",
                  "global w/o agg"});
    for (const std::size_t d : {std::size_t{1}, std::size_t{1} << 7, std::size_t{1} << 10,
                                std::size_t{1} << 14, n}) {
        std::vector<std::string> row{d == n ? "n" : std::to_string(d)};
        const struct {
            simt::AtomicSpace space;
            bool agg;
        } modes[] = {{simt::AtomicSpace::shared, false},
                     {simt::AtomicSpace::shared, true},
                     {simt::AtomicSpace::global, true},
                     {simt::AtomicSpace::global, false}};
        for (const auto& m : modes) {
            const auto s = bench::repeat_ns(scale.reps, [&](std::size_t rep) {
                return run_count(arch, m.space, m.agg, n, d, rep);
            });
            row.push_back(bench::fmt_eng(bench::throughput(n, s.mean)));
        }
        t.add_row(std::move(row));
    }
    t.print(std::cout);
}

}  // namespace

int main() {
    const auto scale = gpusel::bench::Scale::from_env();
    // The paper uses n = 2^28; default here is the sweep maximum.
    const std::size_t n = std::size_t{1} << scale.max_log_n;
    std::cout << "Fig. 8 (right) reproduction: repetition impact on the count kernel ("
              << scale.reps << " reps)\n\n";
    panel(gpusel::simt::preset("K20Xm"), n, scale);
    panel(gpusel::simt::preset("V100"), n, scale);
    return 0;
}
