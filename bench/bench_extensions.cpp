// Benchmarks for the library's extensions beyond the paper's evaluation:
// the Sec. VI future-work features (multi-rank selection, batched
// multi-sequence selection, full sample sort) and the fused top-k of
// Sec. IV-I, each against the naive alternative a user would otherwise run.

#include <iostream>
#include <numeric>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "core/batched_select.hpp"
#include "core/multiselect.hpp"
#include "core/sample_select.hpp"
#include "core/sample_sort.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "data/rng.hpp"

namespace {

using namespace gpusel;

void bench_multiselect(std::size_t n, const bench::Scale& scale) {
    bench::Table t("multi-rank selection vs repeated selection (V100, n=" + std::to_string(n) +
                   ")");
    t.set_header({"ranks", "multi [ms]", "repeated [ms]", "speedup"});
    for (const std::size_t m : {std::size_t{2}, std::size_t{4}, std::size_t{9},
                                std::size_t{32}}) {
        stats::Accumulator multi;
        stats::Accumulator repeated;
        for (std::size_t rep = 0; rep < scale.reps; ++rep) {
            const auto data = data::generate<float>(
                {.n = n, .dist = data::Distribution::uniform_real, .seed = rep + 1});
            std::vector<std::size_t> ranks;
            for (std::size_t i = 1; i <= m; ++i) ranks.push_back(i * n / (m + 1));
            simt::Device d1(simt::arch_v100(), {.record_profiles = false});
            multi.add(core::multi_select<float>(d1, data, ranks, {}).sim_ns);
            simt::Device d2(simt::arch_v100(), {.record_profiles = false});
            double total = 0;
            for (std::size_t r : ranks) {
                total += core::sample_select<float>(d2, data, r, {}).sim_ns;
            }
            repeated.add(total);
        }
        t.add_row({std::to_string(m), bench::fmt_fixed(multi.mean() / 1e6, 3),
                   bench::fmt_fixed(repeated.mean() / 1e6, 3),
                   bench::fmt_fixed(repeated.mean() / multi.mean(), 2) + "x"});
    }
    t.print(std::cout);
}

void bench_batched(const bench::Scale& scale) {
    bench::Table t("batched multi-sequence selection vs per-sequence launches (V100)");
    t.set_header({"sequences x len", "batched [ms]", "per-seq [ms]", "speedup"});
    for (const auto& [m, len] : {std::pair<std::size_t, std::size_t>{64, 2048},
                                 {512, 1024},
                                 {4096, 256}}) {
        stats::Accumulator batched;
        stats::Accumulator individual;
        for (std::size_t rep = 0; rep < scale.reps; ++rep) {
            data::Xoshiro256 rng(rep + 7);
            std::vector<float> flat(m * len);
            for (auto& x : flat) x = static_cast<float>(rng.uniform());
            std::vector<std::size_t> offsets(m + 1);
            for (std::size_t i = 0; i <= m; ++i) offsets[i] = i * len;
            std::vector<std::size_t> ranks(m);
            for (auto& r : ranks) r = rng.bounded(len);

            simt::Device d1(simt::arch_v100(), {.record_profiles = false});
            batched.add(core::batched_select<float>(d1, flat, offsets, ranks, {}).sim_ns);

            simt::Device d2(simt::arch_v100(), {.record_profiles = false});
            double total = 0;
            for (std::size_t i = 0; i < m; ++i) {
                const std::vector<float> seq(flat.begin() + static_cast<std::ptrdiff_t>(offsets[i]),
                                             flat.begin() +
                                                 static_cast<std::ptrdiff_t>(offsets[i + 1]));
                const std::vector<std::size_t> off{0, len};
                const std::vector<std::size_t> rk{ranks[i]};
                total += core::batched_select<float>(d2, seq, off, rk, {}).sim_ns;
            }
            individual.add(total);
        }
        t.add_row({std::to_string(m) + " x " + std::to_string(len),
                   bench::fmt_fixed(batched.mean() / 1e6, 3),
                   bench::fmt_fixed(individual.mean() / 1e6, 3),
                   bench::fmt_fixed(individual.mean() / batched.mean(), 1) + "x"});
    }
    t.print(std::cout);
}

void bench_topk(std::size_t n, const bench::Scale& scale) {
    bench::Table t("fused top-k vs full sort (V100, n=" + std::to_string(n) + ")");
    t.set_header({"k", "topk [ms]", "topk+indices [ms]", "sample_sort [ms]"});
    stats::Accumulator sort_ns;
    for (std::size_t rep = 0; rep < scale.reps; ++rep) {
        const auto data = data::generate<float>(
            {.n = n, .dist = data::Distribution::uniform_real, .seed = rep + 1});
        simt::Device d(simt::arch_v100(), {.record_profiles = false});
        sort_ns.add(core::sample_sort<float>(d, data, {}).sim_ns);
    }
    for (const std::size_t k : {std::size_t{10}, std::size_t{1000}, n / 100}) {
        stats::Accumulator plain;
        stats::Accumulator indexed;
        for (std::size_t rep = 0; rep < scale.reps; ++rep) {
            const auto data = data::generate<float>(
                {.n = n, .dist = data::Distribution::uniform_real, .seed = rep + 1});
            simt::Device d1(simt::arch_v100(), {.record_profiles = false});
            plain.add(core::topk_largest<float>(d1, data, k, {}).sim_ns);
            simt::Device d2(simt::arch_v100(), {.record_profiles = false});
            indexed.add(core::topk_largest_with_indices<float>(d2, data, k, {}).sim_ns);
        }
        t.add_row({std::to_string(k), bench::fmt_fixed(plain.mean() / 1e6, 3),
                   bench::fmt_fixed(indexed.mean() / 1e6, 3),
                   bench::fmt_fixed(sort_ns.mean() / 1e6, 3)});
    }
    t.print(std::cout);
}

void bench_sort(const bench::Scale& scale) {
    bench::Table t("sample sort throughput (V100, single precision)");
    t.set_header({"n", "time [ms]", "throughput [elem/s]", "depth"});
    for (const std::size_t n : scale.sizes()) {
        stats::Accumulator ns;
        stats::Accumulator depth;
        for (std::size_t rep = 0; rep < scale.reps; ++rep) {
            const auto data = data::generate<float>(
                {.n = n, .dist = data::Distribution::uniform_real, .seed = rep + 1});
            simt::Device d(simt::arch_v100(), {.record_profiles = false});
            const auto r = core::sample_sort<float>(d, data, {});
            ns.add(r.sim_ns);
            depth.add(static_cast<double>(r.max_depth));
        }
        t.add_row({std::to_string(n), bench::fmt_fixed(ns.mean() / 1e6, 3),
                   bench::fmt_eng(bench::throughput(n, ns.mean())),
                   bench::fmt_fixed(depth.mean(), 1)});
    }
    t.print(std::cout);
}

}  // namespace

int main() {
    const auto scale = gpusel::bench::Scale::from_env();
    const std::size_t n = std::size_t{1} << std::min<std::size_t>(scale.max_log_n, 20);
    std::cout << "Extension benchmarks (" << scale.reps << " reps)\n\n";
    bench_multiselect(n, scale);
    bench_batched(scale);
    bench_topk(n, scale);
    bench_sort(scale);
    return 0;
}
