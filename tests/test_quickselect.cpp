// Tests for the QuickSelect baseline (Sec. IV-F) and the branchless
// bipartition kernel of Fig. 5.

#include "baselines/quickselect.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "data/distributions.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;
using baselines::quick_select;
using core::QuickSelectConfig;

TEST(QuickSelect, SmallInput) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{9, 4, 6, 1, 3};
    for (std::size_t k = 0; k < data.size(); ++k) {
        EXPECT_EQ(quick_select<float>(dev, data, k, {}).value,
                  stats::nth_element_reference(data, k));
    }
}

class QuickSelectSweep
    : public ::testing::TestWithParam<std::tuple<data::Distribution, simt::AtomicSpace>> {};

TEST_P(QuickSelectSweep, MatchesReference) {
    const auto [dist, space] = GetParam();
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>({.n = n, .dist = dist, .seed = 13});
    QuickSelectConfig cfg;
    cfg.atomic_space = space;
    for (std::uint64_t rs = 0; rs < 3; ++rs) {
        simt::Device dev(simt::arch_v100());
        const std::size_t rank = data::random_rank(n, rs);
        const auto res = quick_select<float>(dev, data, rank, cfg);
        EXPECT_EQ(stats::rank_error<float>(data, res.value, rank), 0u)
            << to_string(dist) << " rank " << rank;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, QuickSelectSweep,
    ::testing::Combine(::testing::ValuesIn(data::all_distributions()),
                       ::testing::Values(simt::AtomicSpace::shared, simt::AtomicSpace::global)),
    [](const auto& info) {
        return to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) == simt::AtomicSpace::shared ? "_shared" : "_global");
    });

TEST(QuickSelect, AllEqualTerminatesImmediately) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data(1 << 14, 7.0f);
    const auto res = quick_select<float>(dev, data, 5000, {});
    EXPECT_EQ(res.value, 7.0f);
    EXPECT_TRUE(res.equality_exit);
    EXPECT_EQ(res.levels, 1u);
}

TEST(QuickSelect, DuplicateSweep) {
    const std::size_t n = 1 << 14;
    for (std::size_t d : {1u, 16u, 128u, 1024u}) {
        const auto data = data::generate<float>({.n = n,
                                                 .dist = data::Distribution::uniform_distinct,
                                                 .distinct_values = d,
                                                 .seed = 17});
        simt::Device dev(simt::arch_v100());
        const std::size_t rank = data::random_rank(n, d);
        const auto res = quick_select<float>(dev, data, rank, {});
        EXPECT_EQ(stats::rank_error<float>(data, res.value, rank), 0u) << "d=" << d;
    }
}

TEST(QuickSelect, MoreLevelsThanSampleSelect) {
    // A single pivot halves the input; 256 splitters cut it by ~256x --
    // QuickSelect must need clearly more recursion levels (Sec. IV-F).
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 18;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 19});
    const auto res = quick_select<float>(dev, data, n / 2, {});
    EXPECT_GE(res.levels, 4u);
}

TEST(QuickSelect, WarpAggregationSameResult) {
    const std::size_t n = 1 << 14;
    const auto data = data::generate<double>(
        {.n = n, .dist = data::Distribution::normal, .seed = 23});
    QuickSelectConfig agg;
    agg.warp_aggregation = true;
    simt::Device d1(simt::arch_v100());
    simt::Device d2(simt::arch_v100());
    EXPECT_EQ(quick_select<double>(d1, data, n / 3, {}).value,
              quick_select<double>(d2, data, n / 3, agg).value);
}

TEST(BipartitionKernel, Fig5SemanticsSmallerLeftRestRight) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 12;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 29});
    auto out = dev.alloc<float>(n);
    auto counters = dev.alloc<std::int32_t>(2);
    counters[0] = counters[1] = 0;
    const float pivot = 0.5f;
    baselines::bipartition_kernel<float>(dev, data, pivot, out.span(), counters.span(), {},
                                         simt::LaunchOrigin::host);
    const auto l = static_cast<std::size_t>(counters[0]);
    const auto r = static_cast<std::size_t>(counters[1]);
    EXPECT_EQ(l + r, n);
    for (std::size_t i = 0; i < l; ++i) ASSERT_LT(out[i], pivot);
    for (std::size_t i = l; i < n; ++i) ASSERT_GE(out[i], pivot);
    // the output is a permutation of the input
    std::vector<float> got(out.data(), out.data() + n);
    std::vector<float> expect(data);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(got, expect);
}

TEST(BipartitionKernel, CollisionsConcentratedOnTwoCounters) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 12;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 31});
    auto out = dev.alloc<float>(n);
    auto counters = dev.alloc<std::int32_t>(2);
    counters[0] = counters[1] = 0;
    QuickSelectConfig cfg;
    cfg.atomic_space = simt::AtomicSpace::global;
    cfg.warp_aggregation = false;
    dev.clear_profiles();
    baselines::bipartition_kernel<float>(dev, data, 0.5f, out.span(), counters.span(), cfg,
                                         simt::LaunchOrigin::host);
    const auto& c = dev.profiles().back().counters;
    EXPECT_EQ(c.global_atomic_ops, n);
    // 32 lanes onto <= 2 addresses: at least 30 collisions per warp
    EXPECT_GE(c.global_atomic_collisions, n / 32 * 30);
}

TEST(QuickSelect, AuxiliaryStorageBounded) {
    // Sec. IV-A: QuickSelect needs ~n/2 elements of auxiliary storage on
    // average; the first level allocates at most one side of the partition.
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 16;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 37});
    const auto res = quick_select<float>(dev, data, n / 2, {});
    // never more than one full copy; typically about half
    EXPECT_LE(res.aux_bytes, n * sizeof(float));
}

TEST(QuickSelect, InvalidInputs) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{1, 2};
    EXPECT_THROW((void)quick_select<float>(dev, data, 2, {}), std::out_of_range);
    QuickSelectConfig bad;
    bad.block_dim = 33;
    EXPECT_THROW((void)quick_select<float>(dev, data, 0, bad), std::invalid_argument);
}

}  // namespace
