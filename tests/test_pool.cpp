// Unit tests for the stream-aware device-memory arena (simt/pool.hpp):
// size-class rounding, free-list reuse, cross-stream gating, tracker
// integration, and the warm-pool allocation-count collapse the pipeline
// layer relies on.

#include "simt/pool.hpp"

#include <gtest/gtest.h>

#include "core/sample_select.hpp"
#include "data/distributions.hpp"
#include "simt/device.hpp"

namespace {

using namespace gpusel;

TEST(MemoryPool, RoundsUpToPowerOfTwoClasses) {
    simt::AllocationTracker tracker;
    simt::MemoryPool pool(tracker);
    auto* a = pool.acquire(100, 0);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->capacity, 128u);
    EXPECT_EQ(a->charged, 100u);
    auto* b = pool.acquire(1, 0);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->capacity, simt::MemoryPool::kMinBlockBytes);
    pool.release(a, 0);
    pool.release(b, 0);
}

TEST(MemoryPool, ZeroByteRequestReturnsNull) {
    simt::AllocationTracker tracker;
    simt::MemoryPool pool(tracker);
    EXPECT_EQ(pool.acquire(0, 0), nullptr);
}

TEST(MemoryPool, SameStreamReleaseThenAcquireReusesBlock) {
    simt::AllocationTracker tracker;
    simt::MemoryPool pool(tracker);
    auto* a = pool.acquire(1024, 0);
    pool.release(a, 0);
    auto* b = pool.acquire(1000, 0);
    EXPECT_EQ(a, b);  // same backing block, exact class match
    const auto s = pool.stats();
    EXPECT_EQ(s.fresh, 1u);
    EXPECT_EQ(s.hits, 1u);
    pool.release(b, 0);
}

TEST(MemoryPool, TrackerChargesRequestedBytesNotCapacity) {
    simt::AllocationTracker tracker;
    simt::MemoryPool pool(tracker);
    tracker.set_baseline();
    auto* a = pool.acquire(100, 0);  // capacity rounds to 128
    EXPECT_EQ(tracker.peak_above_baseline(), 100u);
    pool.release(a, 0);
    EXPECT_EQ(tracker.current(), tracker.baseline());
    // A pool hit still counts toward peak but not toward alloc_count.
    const auto allocs_before = tracker.alloc_count();
    auto* b = pool.acquire(90, 0);
    EXPECT_EQ(tracker.alloc_count(), allocs_before);
    EXPECT_EQ(tracker.reuse_count(), 1u);
    pool.release(b, 0);
}

TEST(MemoryPool, SmallRequestDoesNotPinHugeBlock) {
    simt::AllocationTracker tracker;
    simt::MemoryPool pool(tracker);
    auto* big = pool.acquire(1 << 20, 0);
    pool.release(big, 0);
    // A 4-byte cursor must not check out the idle 1 MiB block: its class is
    // far above the kSmallFitSpan search window.
    auto* tiny = pool.acquire(4, 0);
    EXPECT_NE(tiny, big);
    EXPECT_EQ(tiny->capacity, simt::MemoryPool::kMinBlockBytes);
    // A large request may take the bigger idle block.
    auto* large = pool.acquire(1 << 19, 0);
    EXPECT_EQ(large, big);
    pool.release(tiny, 0);
    pool.release(large, 0);
}

TEST(MemoryPool, CrossStreamReuseGatedOnClock) {
    simt::AllocationTracker tracker;
    simt::MemoryPool pool(tracker);
    double clock0 = 100.0;  // stream 0's simulated time
    double clock1 = 0.0;    // stream 1 lags behind
    pool.set_stream_clock([&](int stream) { return stream == 0 ? clock0 : clock1; });

    auto* a = pool.acquire(512, /*stream=*/0);
    pool.release(a, 0);  // released at stream-0 clock 100

    // Stream 1 (clock 0) must NOT reuse it: stream 0's work may still be
    // in flight at stream 1's current time, and waiting would serialize.
    auto* b = pool.acquire(512, /*stream=*/1);
    EXPECT_NE(b, a);
    EXPECT_EQ(pool.stats().cross_stream, 0u);

    // Once stream 1 has advanced past the release time, reuse is safe
    // (b stays checked out, so a is the only idle candidate).
    clock1 = 200.0;
    auto* c = pool.acquire(512, /*stream=*/1);
    EXPECT_EQ(c, a);
    EXPECT_EQ(pool.stats().cross_stream, 1u);
    pool.release(b, 1);
    pool.release(c, 1);
}

TEST(MemoryPool, TrimDropsIdleBlocks) {
    simt::AllocationTracker tracker;
    simt::MemoryPool pool(tracker);
    auto* a = pool.acquire(4096, 0);
    auto* b = pool.acquire(4096, 0);
    pool.release(a, 0);
    EXPECT_EQ(pool.stats().idle_bytes, 4096u);
    const std::size_t dropped = pool.trim();
    EXPECT_EQ(dropped, 4096u);
    EXPECT_EQ(pool.stats().idle_bytes, 0u);
    EXPECT_EQ(pool.stats().reserved_bytes, 4096u);  // b is still checked out
    pool.release(b, 0);
}

TEST(PooledBuffer, MirrorsDeviceBufferSurface) {
    simt::AllocationTracker tracker;
    simt::MemoryPool pool(tracker);
    simt::PooledBuffer<float> buf(pool, 10);
    EXPECT_EQ(buf.size(), 10u);
    EXPECT_EQ(buf.bytes(), 40u);
    EXPECT_GE(buf.capacity(), 10u);
    buf[3] = 7.5f;
    EXPECT_FLOAT_EQ(buf.span()[3], 7.5f);
    simt::PooledBuffer<float> moved = std::move(buf);
    EXPECT_EQ(moved.size(), 10u);
    EXPECT_FLOAT_EQ(moved[3], 7.5f);
    EXPECT_EQ(buf.size(), 0u);  // NOLINT(bugprone-use-after-move): moved-from is empty
}

TEST(PooledBuffer, ZeroOnAcquireZeroesRecycledBlock) {
    simt::AllocationTracker tracker;
    simt::MemoryPool pool(tracker);
    {
        simt::PooledBuffer<std::int32_t> dirty(pool, 8);
        for (auto& v : dirty.span()) v = -1;
    }
    simt::PooledBuffer<std::int32_t> clean(pool, 8, /*stream=*/0, /*zeroed=*/true);
    EXPECT_EQ(pool.stats().hits, 1u);  // same block came back...
    for (const auto v : clean.span()) EXPECT_EQ(v, 0);  // ...but zeroed
}

// The headline property: a warm pool serves a whole selection from its
// free lists, so repeated selections on one device stop allocating.
TEST(MemoryPool, WarmSelectionAllocatesAtLeastFiveTimesLess) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 16;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 11});

    (void)core::sample_select<float>(dev, data, n / 2, {});
    const auto cold_allocs = dev.tracker().alloc_count();
    ASSERT_GT(cold_allocs, 0u);

    (void)core::sample_select<float>(dev, data, n / 2, {});
    const auto warm_allocs = dev.tracker().alloc_count() - cold_allocs;
    EXPECT_LE(warm_allocs * 5, cold_allocs)
        << "warm run made " << warm_allocs << " backing allocations vs " << cold_allocs
        << " cold";
    EXPECT_GT(dev.tracker().reuse_count(), 0u);
}

}  // namespace
