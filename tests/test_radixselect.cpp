// Tests for the RadixSelect baseline (Alabi et al.): key monotonicity,
// correctness, and the fixed level count of the MSD digit recursion.

#include "baselines/radixselect.hpp"

#include <gtest/gtest.h>

#include "data/distributions.hpp"
#include "data/rng.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;
using baselines::radix_key;
using baselines::radix_select;
using baselines::RadixSelectConfig;

TEST(RadixKey, MonotonicFloat) {
    const float values[] = {-1e30f, -5.0f, -1.0f, -0.5f, 0.0f, 0.5f, 1.0f, 5.0f, 1e30f};
    for (std::size_t i = 0; i + 1 < std::size(values); ++i) {
        EXPECT_LT(radix_key(values[i]), radix_key(values[i + 1]))
            << values[i] << " vs " << values[i + 1];
    }
    // Known caveat of the bit trick: -0.0 sorts before +0.0 even though
    // they compare equal -- harmless for selection of either.
    EXPECT_LT(radix_key(-0.0f), radix_key(0.0f));
}

TEST(RadixKey, MonotonicDouble) {
    data::Xoshiro256 rng(3);
    for (int t = 0; t < 1000; ++t) {
        const double a = (rng.uniform() - 0.5) * 1e6;
        const double b = (rng.uniform() - 0.5) * 1e6;
        if (a < b) {
            EXPECT_LT(radix_key(a), radix_key(b));
        } else if (b < a) {
            EXPECT_LT(radix_key(b), radix_key(a));
        }
    }
}

class RadixSelectSweep : public ::testing::TestWithParam<data::Distribution> {};

TEST_P(RadixSelectSweep, MatchesReference) {
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>({.n = n, .dist = GetParam(), .seed = 47});
    for (std::uint64_t rs = 0; rs < 2; ++rs) {
        simt::Device dev(simt::arch_v100());
        const std::size_t rank = data::random_rank(n, rs);
        const auto res = radix_select<float>(dev, data, rank, {});
        EXPECT_EQ(stats::rank_error<float>(data, res.value, rank), 0u)
            << to_string(GetParam()) << " rank " << rank;
    }
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, RadixSelectSweep,
                         ::testing::ValuesIn(data::all_distributions()),
                         [](const auto& info) { return to_string(info.param); });

TEST(RadixSelect, DoublePrecision) {
    const std::size_t n = 1 << 13;
    const auto data = data::generate<double>(
        {.n = n, .dist = data::Distribution::normal, .seed = 53});
    simt::Device dev(simt::arch_v100());
    const auto res = radix_select<double>(dev, data, n / 2, {});
    EXPECT_EQ(stats::rank_error<double>(data, res.value, n / 2), 0u);
}

TEST(RadixSelect, NegativeValues) {
    simt::Device dev(simt::arch_v100());
    std::vector<float> data;
    for (int i = -5000; i < 5000; ++i) data.push_back(static_cast<float>(i) * 0.25f);
    const auto res = radix_select<float>(dev, data, 100, {});
    EXPECT_EQ(res.value, stats::nth_element_reference(data, 100));
}

TEST(RadixSelect, LevelCountBoundedByKeyWidth) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 16;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::adversarial_cluster, .seed = 3});
    const auto res = radix_select<float>(dev, data, n / 2, {});
    // float keys are 32 bits, 8 bits per level -> at most 4 digit levels
    EXPECT_LE(res.levels, 4u);
}

TEST(RadixSelect, AllEqual) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data(1 << 13, -2.5f);
    const auto res = radix_select<float>(dev, data, 42, {});
    EXPECT_EQ(res.value, -2.5f);
}

TEST(RadixSelect, GlobalAtomicsAndWarpAggregation) {
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::exponential, .seed = 59});
    RadixSelectConfig cfg;
    cfg.atomic_space = simt::AtomicSpace::global;
    cfg.warp_aggregation = true;
    simt::Device dev(simt::arch_v100());
    const auto res = radix_select<float>(dev, data, n / 5, cfg);
    EXPECT_EQ(stats::rank_error<float>(data, res.value, n / 5), 0u);
}

}  // namespace
