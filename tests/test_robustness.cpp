// Robustness-hardening tests (docs/robustness.md): typed Status errors for
// every front-end precondition, the float-key total order (NaN / +-inf /
// -0.0) applied consistently across the stack, the guaranteed-progress
// fallback descent, and recovery counters under injected faults.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/cpu_reference.hpp"
#include "core/approx_select.hpp"
#include "core/batched_select.hpp"
#include "core/float_order.hpp"
#include "core/histogram.hpp"
#include "core/multiselect.hpp"
#include "core/quantile.hpp"
#include "core/sample_select.hpp"
#include "core/sample_sort.hpp"
#include "core/status.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simt/arch.hpp"
#include "simt/device.hpp"

namespace {

using namespace gpusel;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

core::SampleSelectConfig small_cfg() {
    core::SampleSelectConfig cfg;
    cfg.num_buckets = 16;
    cfg.base_case_size = 256;
    return cfg;
}

/// Sorted copy under the pipeline's total order (NaNs last).
template <typename T>
std::vector<T> total_sorted(std::span<const T> data) {
    std::vector<T> copy(data.begin(), data.end());
    std::sort(copy.begin(), copy.end(), [](T a, T b) { return core::total_less(a, b); });
    return copy;
}

std::vector<double> nan_laced(std::size_t n, std::size_t every, std::uint64_t seed) {
    auto data = data::generate<double>({.n = n, .dist = data::Distribution::normal, .seed = seed});
    for (std::size_t i = 0; i < n; i += every) data[i] = kNan;
    return data;
}

// ---- typed preconditions, one per front-end ---------------------------------

TEST(TypedErrors, SampleSelectRankOutOfRange) {
    simt::Device dev(simt::arch_v100());
    const std::vector<double> data{1.0, 2.0, 3.0};
    auto res = core::try_sample_select<double>(dev, data, 3, {});
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error(), core::SelectError::rank_out_of_range);

    auto empty = core::try_sample_select<double>(dev, {}, 0, {});
    ASSERT_FALSE(empty.ok());
    EXPECT_EQ(empty.error(), core::SelectError::rank_out_of_range);
}

TEST(TypedErrors, SampleSelectInvalidConfig) {
    simt::Device dev(simt::arch_v100());
    const std::vector<double> data{1.0, 2.0, 3.0};
    core::SampleSelectConfig cfg;
    cfg.num_buckets = 13;  // not a power of two
    auto res = core::try_sample_select<double>(dev, data, 1, cfg);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error(), core::SelectError::invalid_argument);
}

TEST(TypedErrors, TopKBadK) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{1.0f, 2.0f, 3.0f};
    EXPECT_EQ(core::try_topk_largest<float>(dev, data, 0, {}).error(),
              core::SelectError::rank_out_of_range);
    EXPECT_EQ(core::try_topk_largest<float>(dev, data, 4, {}).error(),
              core::SelectError::rank_out_of_range);
    EXPECT_EQ(core::try_topk_smallest<float>(dev, data, 0, {}).error(),
              core::SelectError::rank_out_of_range);
}

TEST(TypedErrors, MultiSelectRankOutOfRange) {
    simt::Device dev(simt::arch_v100());
    const std::vector<double> data{1.0, 2.0};
    const std::vector<std::size_t> ranks{0, 2};
    EXPECT_EQ(core::try_multi_select<double>(dev, data, ranks, {}).error(),
              core::SelectError::rank_out_of_range);

    auto none = core::try_multi_select<double>(dev, data, {}, {});
    ASSERT_TRUE(none.ok());
    EXPECT_TRUE(none.value().values.empty());
}

TEST(TypedErrors, HistogramEmptyInput) {
    simt::Device dev(simt::arch_v100());
    EXPECT_EQ(core::try_equi_depth_histogram<float>(dev, {}, {}).error(),
              core::SelectError::empty_input);
}

TEST(TypedErrors, ApproxSelectRankOutOfRange) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{1.0f, 2.0f};
    EXPECT_EQ(core::try_approx_select<float>(dev, data, 2, {}).error(),
              core::SelectError::rank_out_of_range);
}

TEST(TypedErrors, BatchedSelectShapeAndRanks) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> flat{1.0f, 2.0f, 3.0f};
    const std::vector<std::size_t> offsets{0, 2, 3};
    // rank 2 in a 2-element sequence
    EXPECT_EQ(core::try_batched_select<float>(dev, flat, offsets,
                                              std::vector<std::size_t>{2, 0}, {})
                  .error(),
              core::SelectError::rank_out_of_range);
    // empty sequence
    EXPECT_EQ(core::try_batched_select<float>(dev, flat, std::vector<std::size_t>{0, 0, 3},
                                              std::vector<std::size_t>{0, 0}, {})
                  .error(),
              core::SelectError::empty_input);
    // offsets not spanning the flat array
    EXPECT_EQ(core::try_batched_select<float>(dev, flat, std::vector<std::size_t>{0, 2},
                                              std::vector<std::size_t>{0}, {})
                  .error(),
              core::SelectError::invalid_argument);
}

TEST(TypedErrors, QuantileRank) {
    EXPECT_EQ(core::try_quantile_rank(0, 0.5).error(), core::SelectError::empty_input);
    EXPECT_EQ(core::try_quantile_rank(10, 1.5).error(), core::SelectError::invalid_argument);
    EXPECT_EQ(core::try_quantile_rank(10, kNan).error(), core::SelectError::invalid_argument);
    auto ok = core::try_quantile_rank(11, 0.5);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 5u);
}

TEST(TypedErrors, LegacyWrappersKeepExceptionTypes) {
    simt::Device dev(simt::arch_v100());
    const std::vector<double> data{1.0, 2.0, 3.0};
    EXPECT_THROW((void)core::sample_select<double>(dev, data, 9, {}), std::out_of_range);
    EXPECT_THROW((void)core::equi_depth_histogram<double>(dev, {}, {}), std::invalid_argument);
    core::SampleSelectConfig bad;
    bad.num_buckets = 13;
    EXPECT_THROW((void)core::sample_select<double>(dev, data, 1, bad), std::invalid_argument);
}

// ---- float key semantics: NaN / +-inf / -0.0 --------------------------------

TEST(FloatOrder, TotalOrderBasics) {
    EXPECT_TRUE(core::total_less(-kInf, kInf));
    EXPECT_TRUE(core::total_less(kInf, kNan));
    EXPECT_FALSE(core::total_less(kNan, kNan));
    EXPECT_TRUE(core::total_equal(kNan, kNan));
    EXPECT_TRUE(core::total_equal(-0.0, 0.0));
    EXPECT_FALSE(core::total_less(-0.0, 0.0));
    EXPECT_FALSE(core::total_less(0.0, -0.0));
}

TEST(NanKeys, SampleSelectMatchesTotalOrderReference) {
    simt::Device dev(simt::arch_v100());
    const auto data = nan_laced(4096, 17, 31);
    const auto sorted = total_sorted<double>(data);
    const std::size_t nans = core::count_nan_keys(std::span<const double>(data));
    ASSERT_GT(nans, 0u);

    // A numeric rank agrees with the total-order reference ...
    const std::size_t mid = (data.size() - nans) / 2;
    auto res = core::try_sample_select<double>(dev, data, mid, small_cfg());
    ASSERT_TRUE(res.ok()) << res.status().to_message();
    EXPECT_EQ(res.value().value, sorted[mid]);
    EXPECT_EQ(res.value().nan_count, nans);

    // ... and a rank inside the NaN tail answers quiet NaN.
    auto tail = core::try_sample_select<double>(dev, data, data.size() - 1, small_cfg());
    ASSERT_TRUE(tail.ok());
    EXPECT_TRUE(std::isnan(tail.value().value));
}

TEST(NanKeys, CpuReferencesAgreeWithDevice) {
    const auto data = nan_laced(3000, 13, 77);
    const auto sorted = total_sorted<double>(data);
    for (const std::size_t rank : {std::size_t{0}, std::size_t{1499}, data.size() - 1}) {
        const auto nth = baselines::cpu_nth_element<double>(data, rank);
        EXPECT_TRUE(core::total_equal(nth.value, sorted[rank])) << rank;
        const double serial = baselines::serial_sample_select<double>(data, rank, 16, 64, 5);
        EXPECT_TRUE(core::total_equal(serial, sorted[rank])) << rank;
    }
}

TEST(NanKeys, RejectPolicyFailsEveryFrontEnd) {
    simt::Device dev(simt::arch_v100());
    const auto data = nan_laced(2048, 9, 3);
    auto cfg = small_cfg();
    cfg.nan_policy = core::NanPolicy::reject;
    const auto e = core::SelectError::nan_keys_rejected;

    EXPECT_EQ(core::try_sample_select<double>(dev, data, 10, cfg).error(), e);
    EXPECT_EQ(core::try_topk_largest<double>(dev, data, 5, cfg).error(), e);
    EXPECT_EQ(core::try_topk_smallest<double>(dev, data, 5, cfg).error(), e);
    EXPECT_EQ(core::try_multi_select<double>(dev, data, std::vector<std::size_t>{1, 2}, cfg)
                  .error(),
              e);
    EXPECT_EQ(core::try_equi_depth_histogram<double>(dev, data, cfg).error(), e);
    EXPECT_EQ(core::try_approx_select<double>(dev, data, 10, cfg).error(), e);
    EXPECT_EQ(core::try_sample_sort<double>(dev, data, cfg).error(), e);
    const std::vector<std::size_t> offsets{0, data.size()};
    EXPECT_EQ(core::try_batched_select<double>(dev, data, offsets,
                                               std::vector<std::size_t>{0}, cfg)
                  .error(),
              e);
}

TEST(NanKeys, TopKLargestClaimsNansFirst) {
    simt::Device dev(simt::arch_v100());
    auto data = nan_laced(4096, 64, 11);
    const std::size_t nans = core::count_nan_keys(std::span<const double>(data));
    ASSERT_GE(nans, 3u);

    // k <= nan_count: everything returned is NaN.
    auto all_nan = core::try_topk_largest<double>(dev, data, 3, small_cfg());
    ASSERT_TRUE(all_nan.ok()) << all_nan.status().to_message();
    for (const double v : all_nan.value().elements) EXPECT_TRUE(std::isnan(v));
    EXPECT_TRUE(std::isnan(all_nan.value().threshold));

    // k > nan_count: exactly nan_count NaNs plus the largest numerics.
    const std::size_t k = nans + 40;
    auto mixed = core::try_topk_largest<double>(dev, data, k, small_cfg());
    ASSERT_TRUE(mixed.ok()) << mixed.status().to_message();
    const auto& elems = mixed.value().elements;
    ASSERT_EQ(elems.size(), k);
    const auto got_nans = static_cast<std::size_t>(
        std::count_if(elems.begin(), elems.end(), [](double v) { return std::isnan(v); }));
    EXPECT_EQ(got_nans, nans);
    const auto sorted = total_sorted<double>(data);
    const double kth = sorted[sorted.size() - k];  // k-th largest in the total order
    for (const double v : elems) {
        if (!std::isnan(v)) {
            EXPECT_GE(v, kth);
        }
    }
    EXPECT_TRUE(core::total_equal(mixed.value().threshold, kth));
}

TEST(NanKeys, TopKSmallestAvoidsNans) {
    simt::Device dev(simt::arch_v100());
    const auto data = nan_laced(4096, 64, 19);
    auto res = core::try_topk_smallest<double>(dev, data, 50, small_cfg());
    ASSERT_TRUE(res.ok()) << res.status().to_message();
    const auto sorted = total_sorted<double>(data);
    for (const double v : res.value().elements) {
        EXPECT_FALSE(std::isnan(v));
        EXPECT_LE(v, sorted[49]);
    }
    EXPECT_EQ(res.value().threshold, sorted[49]);
}

TEST(NanKeys, SampleSortPutsNansLast) {
    simt::Device dev(simt::arch_v100());
    const auto data = nan_laced(4096, 33, 23);
    const std::size_t nans = core::count_nan_keys(std::span<const double>(data));
    auto res = core::try_sample_sort<double>(dev, data, small_cfg());
    ASSERT_TRUE(res.ok()) << res.status().to_message();
    const auto& sorted = res.value().sorted;
    ASSERT_EQ(sorted.size(), data.size());
    EXPECT_EQ(res.value().nan_count, nans);
    const std::size_t n_num = sorted.size() - nans;
    for (std::size_t i = 1; i < n_num; ++i) EXPECT_LE(sorted[i - 1], sorted[i]) << i;
    for (std::size_t i = n_num; i < sorted.size(); ++i) EXPECT_TRUE(std::isnan(sorted[i])) << i;
}

TEST(NanKeys, MultiSelectStraddlesTheNanTail) {
    simt::Device dev(simt::arch_v100());
    const auto data = nan_laced(4096, 21, 41);
    const std::size_t nans = core::count_nan_keys(std::span<const double>(data));
    const std::size_t n_num = data.size() - nans;
    const std::vector<std::size_t> ranks{0, n_num - 1, n_num, data.size() - 1};
    auto res = core::try_multi_select<double>(dev, data, ranks, small_cfg());
    ASSERT_TRUE(res.ok()) << res.status().to_message();
    const auto sorted = total_sorted<double>(data);
    EXPECT_EQ(res.value().values[0], sorted[0]);
    EXPECT_EQ(res.value().values[1], sorted[n_num - 1]);
    EXPECT_TRUE(std::isnan(res.value().values[2]));
    EXPECT_TRUE(std::isnan(res.value().values[3]));
    EXPECT_EQ(res.value().nan_count, nans);
}

TEST(InfKeys, InfinitiesSelectAtTheExtremes) {
    simt::Device dev(simt::arch_v100());
    auto data = data::generate<double>(
        {.n = 4096, .dist = data::Distribution::uniform_real, .seed = 51});
    data[100] = -kInf;
    data[200] = -kInf;
    data[300] = kInf;
    auto lo = core::try_sample_select<double>(dev, data, 0, small_cfg());
    auto hi = core::try_sample_select<double>(dev, data, data.size() - 1, small_cfg());
    ASSERT_TRUE(lo.ok() && hi.ok());
    EXPECT_EQ(lo.value().value, -kInf);
    EXPECT_EQ(hi.value().value, kInf);
}

TEST(SignedZero, NegativeZeroEqualsPositiveZero) {
    simt::Device dev(simt::arch_v100());
    // Half the keys are zeros of mixed sign: any rank inside the zero run
    // must answer zero regardless of which representation got selected.
    std::vector<double> data(2048);
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (i < 512) {
            data[i] = -1.0 - static_cast<double>(i);
        } else if (i < 1536) {
            data[i] = (i % 2 == 0) ? -0.0 : 0.0;
        } else {
            data[i] = 1.0 + static_cast<double>(i);
        }
    }
    auto res = core::try_sample_select<double>(dev, data, 1024, small_cfg());
    ASSERT_TRUE(res.ok()) << res.status().to_message();
    EXPECT_EQ(res.value().value, 0.0);

    auto rank = core::try_rank_of<double>(dev, data, -0.0, {});
    ASSERT_TRUE(rank.ok());
    EXPECT_EQ(rank.value().less, 512u);
    EXPECT_EQ(rank.value().equal, 1024u);  // -0.0 == +0.0 in the total order
}

TEST(NanKeys, RankOfNanNeedle) {
    simt::Device dev(simt::arch_v100());
    const auto data = nan_laced(2048, 10, 67);
    const std::size_t nans = core::count_nan_keys(std::span<const double>(data));
    auto res = core::try_rank_of<double>(dev, data, kNan, {});
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.value().less, data.size() - nans);
    EXPECT_EQ(res.value().equal, nans);
}

// ---- guaranteed progress -----------------------------------------------------

TEST(GuaranteedProgress, ForceFallbackSelectsCorrectly) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<double>(
        {.n = 8192, .dist = data::Distribution::uniform_real, .seed = 61});
    auto cfg = small_cfg();
    cfg.force_fallback = true;
    const std::size_t rank = 3000;
    auto res = core::try_sample_select<double>(dev, data, rank, cfg);
    ASSERT_TRUE(res.ok()) << res.status().to_message();
    const auto sorted = total_sorted<double>(data);
    EXPECT_EQ(res.value().value, sorted[rank]);
    EXPECT_GE(res.value().fallback_levels, 1u);
    EXPECT_GE(dev.robustness().fallback_levels, 1u);
}

TEST(GuaranteedProgress, ForceFallbackMultiSelectAndSort) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<double>(
        {.n = 4096, .dist = data::Distribution::normal, .seed = 62});
    auto cfg = small_cfg();
    cfg.force_fallback = true;
    const auto sorted = total_sorted<double>(data);

    const std::vector<std::size_t> ranks{10, 2048, 4000};
    auto multi = core::try_multi_select<double>(dev, data, ranks, cfg);
    ASSERT_TRUE(multi.ok()) << multi.status().to_message();
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        EXPECT_EQ(multi.value().values[i], sorted[ranks[i]]) << i;
    }
    EXPECT_GE(multi.value().fallback_levels, 1u);

    auto sort = core::try_sample_sort<double>(dev, data, cfg);
    ASSERT_TRUE(sort.ok()) << sort.status().to_message();
    EXPECT_EQ(sort.value().sorted, sorted);
    EXPECT_GE(sort.value().fallback_levels, 1u);
}

TEST(GuaranteedProgress, AllEqualInputExitsViaEqualityBucket) {
    simt::Device dev(simt::arch_v100());
    const std::vector<double> data(8192, 42.0);
    auto res = core::try_sample_select<double>(dev, data, 4096, small_cfg());
    ASSERT_TRUE(res.ok()) << res.status().to_message();
    EXPECT_EQ(res.value().value, 42.0);
    EXPECT_TRUE(res.value().equality_exit);

    // Same under forced fallback: the tripartition's equality bucket fires.
    auto cfg = small_cfg();
    cfg.force_fallback = true;
    auto fb = core::try_sample_select<double>(dev, data, 4096, cfg);
    ASSERT_TRUE(fb.ok()) << fb.status().to_message();
    EXPECT_EQ(fb.value().value, 42.0);
}

TEST(GuaranteedProgress, TwoValueAdversarialInput) {
    simt::Device dev(simt::arch_v100());
    std::vector<double> data(8192);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = (i % 2 == 0) ? 1.0 : 2.0;
    for (const std::size_t rank : {std::size_t{0}, std::size_t{4095}, std::size_t{8191}}) {
        auto res = core::try_sample_select<double>(dev, data, rank, small_cfg());
        ASSERT_TRUE(res.ok()) << res.status().to_message();
        EXPECT_EQ(res.value().value, rank < 4096 ? 1.0 : 2.0) << rank;
    }
}

TEST(GuaranteedProgress, DepthCapReturnsTypedError) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<double>(
        {.n = 1 << 16, .dist = data::Distribution::uniform_real, .seed = 63});
    auto cfg = small_cfg();
    cfg.max_levels = 1;  // 64k -> 4k needs two 16-bucket levels; one is not enough
    cfg.force_fallback = true;  // fallback shrinks even slower
    auto res = core::try_sample_select<double>(dev, data, 1000, cfg);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error(), core::SelectError::depth_exceeded);
}

// ---- recovery counters under injected faults ---------------------------------

TEST(FaultRecovery, TransientFaultsAreRetriedAndCounted) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<double>(
        {.n = 4096, .dist = data::Distribution::uniform_real, .seed = 71});
    const auto sorted = total_sorted<double>(data);

    simt::FaultSpec spec;
    spec.seed = 17;
    spec.alloc_rate = 0.02;
    spec.launch_rate = 0.02;
    dev.set_faults(spec);

    std::size_t recovered = 0;
    for (int round = 0; round < 40; ++round) {
        auto res = core::try_sample_select<double>(dev, data, 2000, small_cfg());
        if (res.ok()) {
            EXPECT_EQ(res.value().value, sorted[2000]) << round;
            ++recovered;
        } else {
            EXPECT_TRUE(res.error() == core::SelectError::allocation_failed ||
                        res.error() == core::SelectError::launch_failed)
                << res.status().to_message();
        }
    }
    EXPECT_GT(recovered, 0u);
    EXPECT_GT(dev.robustness().alloc_retries + dev.robustness().launch_retries, 0u)
        << "2% fault rates over 40 selections must have triggered retries";
    EXPECT_GT(dev.fault_counters().alloc_faults + dev.fault_counters().launch_faults, 0u);
}

TEST(FaultRecovery, PermanentBurstSurfacesTypedError) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<double>(
        {.n = 4096, .dist = data::Distribution::uniform_real, .seed = 72});
    simt::FaultSpec spec;
    spec.launch_rate = 1.0;  // every launch fails: unrecoverable
    dev.set_faults(spec);
    auto res = core::try_sample_select<double>(dev, data, 100, small_cfg());
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error(), core::SelectError::launch_failed);

    dev.clear_faults();
    auto healthy = core::try_sample_select<double>(dev, data, 100, small_cfg());
    EXPECT_TRUE(healthy.ok()) << "device must stay usable after exhausted retries";
}

}  // namespace
