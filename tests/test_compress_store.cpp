// Tests for the masked compress-store engines (simt/simd.hpp) and the
// argselect front-ends built on them (core/argselect.hpp).
//
// The compress-store tiers are part of the simulator's bit-exactness
// contract: every vector tier must pack exactly the same bytes to exactly
// the same slots as the scalar reference, including NaN payload bits and
// signed zeros (the engines move elements through integer registers, so
// no FP unit may quieten or canonicalize anything).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "baselines/cpu_reference.hpp"
#include "core/argselect.hpp"
#include "core/float_order.hpp"
#include "core/key_payload.hpp"
#include "simt/device.hpp"
#include "simt/simd.hpp"

namespace {

using namespace gpusel;
using core::ArgPair;
using simt::simd::Level;

class CompressLevels : public ::testing::TestWithParam<Level> {
protected:
    void SetUp() override {
        simt::simd::set_level(GetParam());
        const bool supported = simt::simd::active_level() == GetParam();
        simt::simd::set_enabled(true);
        if (!supported) {
            GTEST_SKIP() << "tier " << simt::simd::level_name(GetParam())
                         << " not available in this build/host";
        }
    }
    void TearDown() override { simt::simd::set_enabled(true); }
};

/// Runs compress_store at `lvl` and at the scalar tier on identical inputs
/// and requires byte-identical outputs (including untouched sentinel bytes
/// past the written run).
template <typename T>
void check_compress(Level lvl, const std::vector<T>& src, std::uint32_t mask, int lanes) {
    std::vector<T> got(src.size() + 4);
    std::vector<T> ref(src.size() + 4);
    std::memset(got.data(), 0xAB, got.size() * sizeof(T));
    std::memset(ref.data(), 0xAB, ref.size() * sizeof(T));

    simt::simd::set_level(lvl);
    const int n_got = simt::simd::compress_store(src.data(), mask, lanes, got.data());
    simt::simd::set_level(Level::scalar);
    const int n_ref = simt::simd::compress_store(src.data(), mask, lanes, ref.data());
    simt::simd::set_enabled(true);

    ASSERT_EQ(n_got, n_ref) << "mask=" << mask << " lanes=" << lanes;
    ASSERT_EQ(std::memcmp(got.data(), ref.data(), got.size() * sizeof(T)), 0)
        << "mask=" << mask << " lanes=" << lanes;
}

template <typename T>
std::vector<T> pattern_values(int lanes, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<T> v(static_cast<std::size_t>(lanes));
    for (auto& x : v) {
        // Fill through memcpy so float lanes get arbitrary payload bits
        // (NaNs with random payloads included) -- the engines must move
        // them verbatim.
        const std::uint64_t bits = rng();
        std::memcpy(&x, &bits, sizeof(T));
    }
    return v;
}

TEST_P(CompressLevels, Exhaustive8LaneMasks4Byte) {
    const auto src = pattern_values<float>(8, 11);
    for (std::uint32_t mask = 0; mask < 256; ++mask) {
        check_compress<float>(GetParam(), src, mask, 8);
    }
}

TEST_P(CompressLevels, Exhaustive8LaneMasks8Byte) {
    const auto srcd = pattern_values<double>(8, 13);
    const auto srcp = pattern_values<ArgPair>(8, 17);
    for (std::uint32_t mask = 0; mask < 256; ++mask) {
        check_compress<double>(GetParam(), srcd, mask, 8);
        check_compress<ArgPair>(GetParam(), srcp, mask, 8);
    }
}

TEST_P(CompressLevels, Randomized16And32LaneMasks) {
    std::mt19937 rng(23);
    for (int lanes : {16, 32}) {
        const auto srcf = pattern_values<float>(lanes, 29u + static_cast<unsigned>(lanes));
        const auto srcp = pattern_values<ArgPair>(lanes, 31u + static_cast<unsigned>(lanes));
        for (int trial = 0; trial < 500; ++trial) {
            const auto mask = static_cast<std::uint32_t>(rng());
            check_compress<float>(GetParam(), srcf, mask, lanes);
            check_compress<ArgPair>(GetParam(), srcp, mask, lanes);
        }
        // Edge masks: empty, full, single lane, alternating.
        for (std::uint32_t mask : {0u, ~0u, 1u, 0x80000000u, 0x55555555u, 0xAAAAAAAAu}) {
            check_compress<float>(GetParam(), srcf, mask, lanes);
            check_compress<ArgPair>(GetParam(), srcp, mask, lanes);
        }
    }
}

TEST_P(CompressLevels, PartialTileLanes) {
    // Odd lane counts (tail tiles) with mask bits set beyond `lanes`,
    // which the engines must ignore.
    const auto src = pattern_values<float>(32, 37);
    std::mt19937 rng(41);
    for (int lanes : {1, 3, 5, 7, 9, 15, 17, 31}) {
        for (int trial = 0; trial < 64; ++trial) {
            check_compress<float>(GetParam(), src, static_cast<std::uint32_t>(rng()), lanes);
        }
    }
}

TEST_P(CompressLevels, ReverseMatchesForwardDefinition) {
    const auto src = pattern_values<double>(32, 43);
    std::mt19937 rng(47);
    for (int trial = 0; trial < 200; ++trial) {
        const auto mask = static_cast<std::uint32_t>(rng());
        const int lanes = 32;
        std::vector<double> fwd(32);
        const int n = simt::simd::compress_store(src.data(), mask, lanes, fwd.data());
        std::vector<double> rev(64, -7.0);
        const int m = simt::simd::compress_store_reverse(src.data(), mask, lanes, rev.data() + 40);
        ASSERT_EQ(m, n);
        for (int i = 0; i < n; ++i) {
            // Element i of the forward run lands i slots below dst_hi.
            EXPECT_EQ(rev[static_cast<std::size_t>(40 - i)], fwd[static_cast<std::size_t>(i)]);
        }
    }
}

TEST_P(CompressLevels, ByteMasksMatchScalar) {
    std::mt19937 rng(53);
    std::vector<std::uint8_t> v(32);
    for (int trial = 0; trial < 300; ++trial) {
        for (auto& b : v) b = static_cast<std::uint8_t>(rng() % 8);
        const auto x = static_cast<std::uint8_t>(rng() % 8);
        for (int lanes : {32, 17, 8, 1}) {
            simt::simd::set_level(GetParam());
            const std::uint32_t eq = simt::simd::byte_eq_mask(v.data(), x, lanes);
            const std::uint32_t gt = simt::simd::byte_gt_mask(v.data(), x, lanes);
            simt::simd::set_level(Level::scalar);
            EXPECT_EQ(eq, simt::simd::byte_eq_mask(v.data(), x, lanes));
            EXPECT_EQ(gt, simt::simd::byte_gt_mask(v.data(), x, lanes));
            simt::simd::set_enabled(true);
        }
    }
}

TEST_P(CompressLevels, CmpGtMaskMatchesScalarWithSpecials) {
    std::mt19937 rng(59);
    std::uniform_real_distribution<float> dist(-4.0f, 4.0f);
    std::vector<float> v(32);
    for (int trial = 0; trial < 300; ++trial) {
        for (auto& x : v) x = dist(rng);
        v[1] = std::numeric_limits<float>::quiet_NaN();
        v[3] = std::numeric_limits<float>::infinity();
        v[5] = -std::numeric_limits<float>::infinity();
        v[6] = -0.0f;
        v[7] = 0.0f;
        for (const float pivot : {0.0f, -0.0f, 1.5f, std::numeric_limits<float>::infinity(),
                                  std::numeric_limits<float>::quiet_NaN()}) {
            for (int lanes : {32, 19, 8}) {
                simt::simd::set_level(GetParam());
                const std::uint32_t m = simt::simd::cmp_gt_mask(v.data(), pivot, lanes);
                simt::simd::set_level(Level::scalar);
                EXPECT_EQ(m, simt::simd::cmp_gt_mask(v.data(), pivot, lanes));
                simt::simd::set_enabled(true);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Tiers, CompressLevels,
                         ::testing::Values(Level::scalar, Level::sse2, Level::avx2,
                                           Level::avx512),
                         [](const ::testing::TestParamInfo<Level>& pi) {
                             return simt::simd::level_name(pi.param);
                         });

// ===========================================================================
// argselect front-ends vs the CPU reference.
// ===========================================================================

/// The expected (key, index) pair for `rank` under the index stability
/// policy: std::nth_element over (key total order, then index).
core::ArgSelectResult reference_argselect(const std::vector<float>& keys, std::size_t rank) {
    std::vector<ArgPair> pairs(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        pairs[i] = {keys[i], static_cast<std::uint32_t>(i)};
    }
    std::nth_element(pairs.begin(), pairs.begin() + static_cast<std::ptrdiff_t>(rank),
                     pairs.end(),
                     [](ArgPair a, ArgPair b) { return core::total_less(a, b); });
    core::ArgSelectResult r;
    r.key = pairs[rank].key;
    r.index = pairs[rank].payload;
    return r;
}

void expect_argselect_matches(const std::vector<float>& keys, std::size_t rank) {
    simt::Device dev(simt::arch_v100());
    const auto got = core::argselect(dev, keys, rank, {});
    const auto want = reference_argselect(keys, rank);
    if (std::isnan(want.key)) {
        EXPECT_TRUE(std::isnan(got.key)) << "rank=" << rank;
    } else {
        EXPECT_EQ(got.key, want.key) << "rank=" << rank;
    }
    EXPECT_EQ(got.index, want.index) << "rank=" << rank;
    // The returned pair is always self-consistent with the input.
    if (!std::isnan(want.key)) {
        EXPECT_EQ(keys[got.index], got.key);
    } else {
        EXPECT_TRUE(std::isnan(keys[got.index]));
    }
}

TEST(ArgSelect, DuplicateKeysAreIndexStable) {
    // Heavy duplication: every selected rank must resolve ties by the
    // original position, exactly like nth_element over (key, index).
    std::mt19937 rng(61);
    std::vector<float> keys(4096);
    for (auto& k : keys) k = static_cast<float>(rng() % 7);
    for (const std::size_t rank : {std::size_t{0}, keys.size() / 3, keys.size() / 2,
                                   keys.size() - 1}) {
        expect_argselect_matches(keys, rank);
    }
}

TEST(ArgSelect, AllEqualKeys) {
    const std::vector<float> keys(2048, 3.25f);
    for (const std::size_t rank : {std::size_t{0}, std::size_t{1000}, keys.size() - 1}) {
        expect_argselect_matches(keys, rank);  // index must equal rank exactly
        simt::Device dev(simt::arch_v100());
        EXPECT_EQ(core::argselect(dev, keys, rank, {}).index, rank);
    }
}

TEST(ArgSelect, SpecialValuesAndNanTail) {
    std::mt19937 rng(67);
    std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
    std::vector<float> keys(1024);
    for (auto& k : keys) k = dist(rng);
    keys[10] = std::numeric_limits<float>::quiet_NaN();
    keys[500] = std::numeric_limits<float>::quiet_NaN();
    keys[900] = std::numeric_limits<float>::quiet_NaN();
    keys[20] = -0.0f;
    keys[21] = 0.0f;
    keys[30] = std::numeric_limits<float>::infinity();
    keys[31] = -std::numeric_limits<float>::infinity();
    for (std::size_t rank = 0; rank < keys.size(); rank += 97) {
        expect_argselect_matches(keys, rank);
    }
    // The three NaN-tail ranks answer the NaN indices in ascending order.
    simt::Device dev(simt::arch_v100());
    EXPECT_EQ(core::argselect(dev, keys, 1021, {}).index, 10u);
    EXPECT_EQ(core::argselect(dev, keys, 1022, {}).index, 500u);
    EXPECT_EQ(core::argselect(dev, keys, 1023, {}).index, 900u);
}

TEST(ArgSelect, MatchesCpuReferenceOnPairs) {
    // Cross-check the device pipeline against the serial CPU reference
    // running on the same ArgPair element type.
    std::mt19937 rng(71);
    std::vector<float> keys(8192);
    for (auto& k : keys) k = static_cast<float>(rng() % 100);
    std::vector<ArgPair> pairs(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        pairs[i] = {keys[i], static_cast<std::uint32_t>(i)};
    }
    simt::Device dev(simt::arch_v100());
    for (const std::size_t rank : {std::size_t{17}, keys.size() / 2, keys.size() - 2}) {
        const auto got = core::argselect(dev, keys, rank, {});
        const auto ref = baselines::cpu_nth_element<ArgPair>(pairs, rank);
        EXPECT_EQ(got.key, ref.value.key) << "rank=" << rank;
        EXPECT_EQ(got.index, ref.value.payload) << "rank=" << rank;
    }
}

TEST(ArgSelect, RejectPolicyAndRankRange) {
    simt::Device dev(simt::arch_v100());
    std::vector<float> keys{1.0f, std::numeric_limits<float>::quiet_NaN(), 3.0f};
    core::SampleSelectConfig cfg;
    cfg.nan_policy = core::NanPolicy::reject;
    EXPECT_EQ(core::try_argselect(dev, keys, 0, cfg).status().code,
              core::SelectError::nan_keys_rejected);
    EXPECT_EQ(core::try_argselect(dev, keys, 3, {}).status().code,
              core::SelectError::rank_out_of_range);
}

TEST(ArgTopK, SortedDescendingWithStableIndices) {
    std::mt19937 rng(73);
    std::vector<float> keys(4096);
    for (auto& k : keys) k = static_cast<float>(rng() % 50);
    simt::Device dev(simt::arch_v100());
    for (const std::size_t k : {std::size_t{1}, std::size_t{64}, std::size_t{1000},
                                keys.size()}) {
        const auto res = core::topk_largest_indices(dev, keys, k, {});
        ASSERT_EQ(res.values.size(), k);
        ASSERT_EQ(res.indices.size(), k);

        // Reference: full sort of (negated key, index) pairs.
        std::vector<ArgPair> pairs(keys.size());
        for (std::size_t i = 0; i < keys.size(); ++i) {
            pairs[i] = {-keys[i], static_cast<std::uint32_t>(i)};
        }
        std::sort(pairs.begin(), pairs.end(),
                  [](ArgPair a, ArgPair b) { return core::total_less(a, b); });
        for (std::size_t i = 0; i < k; ++i) {
            EXPECT_EQ(res.values[i], -pairs[i].key) << "i=" << i << " k=" << k;
            EXPECT_EQ(res.indices[i], pairs[i].payload) << "i=" << i << " k=" << k;
            EXPECT_EQ(keys[res.indices[i]], res.values[i]);
        }
        EXPECT_EQ(res.threshold, res.values.back());
    }
}

TEST(ArgTopK, NanKeysClaimTopSlotsFirst) {
    std::vector<float> keys{2.0f, std::numeric_limits<float>::quiet_NaN(), 1.0f,
                            std::numeric_limits<float>::quiet_NaN(), 5.0f};
    simt::Device dev(simt::arch_v100());
    const auto res = core::topk_largest_indices(dev, keys, 3, {});
    ASSERT_EQ(res.values.size(), 3u);
    EXPECT_TRUE(std::isnan(res.values[0]));
    EXPECT_TRUE(std::isnan(res.values[1]));
    EXPECT_EQ(res.indices[0], 1u);  // NaNs in ascending index order
    EXPECT_EQ(res.indices[1], 3u);
    EXPECT_EQ(res.values[2], 5.0f);
    EXPECT_EQ(res.indices[2], 4u);
    EXPECT_EQ(res.nan_count, 2u);
}

TEST(PartialSortByKey, PrefixMatchesStableSort) {
    std::mt19937 rng(79);
    const std::size_t n = 6000;
    std::vector<float> keys(n);
    std::vector<std::uint32_t> payloads(n);
    for (std::size_t i = 0; i < n; ++i) {
        keys[i] = static_cast<float>(rng() % 40);
        payloads[i] = static_cast<std::uint32_t>(1000000 + i);  // distinct marker payloads
    }
    simt::Device dev(simt::arch_v100());
    for (const std::size_t k : {std::size_t{1}, std::size_t{100}, std::size_t{5000}, n}) {
        const auto res = core::partial_sort_by_key(dev, keys, payloads, k, {});
        ASSERT_EQ(res.keys.size(), k);
        ASSERT_EQ(res.payloads.size(), k);

        // Reference: stable sort by key carries payloads in input order on
        // ties -- exactly the (key, index) pair order.
        std::vector<std::size_t> order(n);
        for (std::size_t i = 0; i < n; ++i) order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
        for (std::size_t i = 0; i < k; ++i) {
            EXPECT_EQ(res.keys[i], keys[order[i]]) << "i=" << i << " k=" << k;
            EXPECT_EQ(res.payloads[i], payloads[order[i]]) << "i=" << i << " k=" << k;
        }
    }
}

TEST(PartialSortByKey, NanTailAndDegenerate) {
    std::vector<float> keys{3.0f, std::numeric_limits<float>::quiet_NaN(), -0.0f, 0.0f,
                            std::numeric_limits<float>::infinity()};
    std::vector<std::uint32_t> payloads{10, 11, 12, 13, 14};
    simt::Device dev(simt::arch_v100());
    const auto res = core::partial_sort_by_key(dev, keys, payloads, keys.size(), {});
    ASSERT_EQ(res.keys.size(), keys.size());
    // -0.0 and +0.0 tie on the key and resolve by original index.
    EXPECT_EQ(res.payloads[0], 12u);
    EXPECT_EQ(res.payloads[1], 13u);
    EXPECT_EQ(res.keys[2], 3.0f);
    EXPECT_EQ(res.payloads[2], 10u);
    EXPECT_EQ(res.keys[3], std::numeric_limits<float>::infinity());
    EXPECT_TRUE(std::isnan(res.keys[4]));  // NaN ranks above +inf
    EXPECT_EQ(res.payloads[4], 11u);
    EXPECT_EQ(res.nan_count, 1u);

    EXPECT_EQ(core::try_partial_sort_by_key(dev, keys, payloads, 0, {}).status().code,
              core::SelectError::rank_out_of_range);
    EXPECT_EQ(
        core::try_partial_sort_by_key(dev, keys, std::vector<std::uint32_t>(3), 2, {})
            .status()
            .code,
        core::SelectError::invalid_argument);
}

}  // namespace
