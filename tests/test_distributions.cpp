// Unit tests for the dataset generators (data/distributions.hpp).

#include "data/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace {

using gpusel::data::DatasetSpec;
using gpusel::data::Distribution;
using gpusel::data::generate;
using gpusel::data::random_rank;

template <typename T>
std::size_t count_distinct(std::vector<T> v) {
    std::sort(v.begin(), v.end());
    return static_cast<std::size_t>(std::unique(v.begin(), v.end()) - v.begin());
}

TEST(Distributions, SizeMatchesSpec) {
    for (auto dist : gpusel::data::all_distributions()) {
        const auto v = generate<float>({.n = 1000, .dist = dist, .seed = 1});
        EXPECT_EQ(v.size(), 1000u) << to_string(dist);
    }
}

TEST(Distributions, EmptySpecGivesEmpty) {
    EXPECT_TRUE(generate<float>({.n = 0}).empty());
}

TEST(Distributions, Deterministic) {
    const DatasetSpec spec{.n = 512, .dist = Distribution::uniform_real, .seed = 99};
    EXPECT_EQ(generate<double>(spec), generate<double>(spec));
}

TEST(Distributions, SeedChangesData) {
    const auto a = generate<float>({.n = 512, .dist = Distribution::uniform_real, .seed = 1});
    const auto b = generate<float>({.n = 512, .dist = Distribution::uniform_real, .seed = 2});
    EXPECT_NE(a, b);
}

TEST(Distributions, UniformDistinctAllDistinct) {
    const auto v = generate<double>({.n = 4096, .dist = Distribution::uniform_distinct,
                                     .distinct_values = 0, .seed = 5});
    EXPECT_EQ(count_distinct(v), 4096u);
}

class DistinctValueCount : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DistinctValueCount, ProducesAtMostDDistinct) {
    const std::size_t d = GetParam();
    const auto v = generate<float>({.n = 1 << 14, .dist = Distribution::uniform_distinct,
                                    .distinct_values = d, .seed = 7});
    const std::size_t got = count_distinct(v);
    EXPECT_LE(got, d);
    // With n >> d every value should actually appear.
    EXPECT_GE(got, d - d / 16);
}

INSTANTIATE_TEST_SUITE_P(PaperValues, DistinctValueCount,
                         ::testing::Values(1u, 16u, 128u, 1024u));

TEST(Distributions, SortedAscendingIsSorted) {
    const auto v = generate<float>({.n = 1000, .dist = Distribution::sorted_ascending});
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(Distributions, SortedDescendingIsReverseSorted) {
    const auto v = generate<float>({.n = 1000, .dist = Distribution::sorted_descending});
    EXPECT_TRUE(std::is_sorted(v.rbegin(), v.rend()));
}

TEST(Distributions, OrganPipeSymmetric) {
    const auto v = generate<float>({.n = 10, .dist = Distribution::organ_pipe});
    for (std::size_t i = 0; i < v.size(); ++i) {
        EXPECT_EQ(v[i], v[v.size() - 1 - i]);
    }
}

TEST(Distributions, AdversarialClusterConcentrated) {
    const auto v =
        generate<double>({.n = 1 << 14, .dist = Distribution::adversarial_cluster, .seed = 3});
    const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
    const double range = *mx - *mn;
    // Count elements within 1% of the range around the cluster at 0.5.
    std::size_t inside = 0;
    for (double x : v) {
        if (x >= 0.5 && x < 0.5 + range * 0.01) ++inside;
    }
    EXPECT_GE(inside, v.size() * 95 / 100);
}

TEST(Distributions, AdversarialGeometricPositiveAndSpread) {
    const auto v =
        generate<double>({.n = 4096, .dist = Distribution::adversarial_geometric, .seed = 3});
    for (double x : v) EXPECT_GT(x, 0.0);
    const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
    EXPECT_GT(*mx / *mn, 1e9);  // many orders of magnitude
}

TEST(Distributions, NormalMeanNearZero) {
    const auto v = generate<double>({.n = 1 << 16, .dist = Distribution::normal, .seed = 21});
    double sum = 0;
    for (double x : v) sum += x;
    EXPECT_NEAR(sum / static_cast<double>(v.size()), 0.0, 0.02);
}

TEST(Distributions, ExponentialNonNegativeMeanNearOne) {
    const auto v = generate<double>({.n = 1 << 16, .dist = Distribution::exponential, .seed = 2});
    double sum = 0;
    for (double x : v) {
        EXPECT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / static_cast<double>(v.size()), 1.0, 0.05);
}

TEST(Distributions, ZipfHeavilyDuplicatedHead) {
    const auto v = generate<float>({.n = 1 << 16, .dist = Distribution::zipf, .seed = 9});
    // rank-1 value (1.0) should dominate: a Zipf(1.1) head holds >> 1/65536
    std::size_t ones = 0;
    for (float x : v) {
        EXPECT_GE(x, 1.0f);
        EXPECT_LE(x, 65536.0f);
        if (x == 1.0f) ++ones;
    }
    EXPECT_GT(ones, v.size() / 20);  // head concentration
}

TEST(Distributions, ZipfMonotoneFrequencies) {
    const auto v = generate<float>({.n = 1 << 16, .dist = Distribution::zipf, .seed = 10});
    std::size_t c1 = 0;
    std::size_t c16 = 0;
    for (float x : v) {
        if (x == 1.0f) ++c1;
        if (x == 16.0f) ++c16;
    }
    EXPECT_GT(c1, c16);
}

TEST(Distributions, LognormalPositiveSkewed) {
    const auto v = generate<double>({.n = 1 << 16, .dist = Distribution::lognormal, .seed = 11});
    double sum = 0;
    std::size_t below_one = 0;
    for (double x : v) {
        EXPECT_GT(x, 0.0);
        sum += x;
        if (x < 1.0) ++below_one;
    }
    const double mean = sum / static_cast<double>(v.size());
    // median is 1 but mean = exp(sigma^2/2) = e^2 ~ 7.4: strong skew
    EXPECT_GT(mean, 3.0);
    EXPECT_NEAR(static_cast<double>(below_one) / static_cast<double>(v.size()), 0.5, 0.02);
}

TEST(RandomRank, InRangeAndDeterministic) {
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        const std::size_t r = random_rank(1000, seed);
        EXPECT_LT(r, 1000u);
        EXPECT_EQ(r, random_rank(1000, seed));
    }
}

TEST(RandomRank, ThrowsOnEmpty) {
    EXPECT_THROW((void)random_rank(0, 1), std::invalid_argument);
}

TEST(Distributions, ToStringCoversAll) {
    for (auto d : gpusel::data::all_distributions()) {
        EXPECT_NE(to_string(d), "unknown");
    }
}

}  // namespace
