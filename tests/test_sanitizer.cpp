// Tests for SimTSan (simt/sanitizer.hpp): every contract-violation class is
// exercised by a deliberately broken micro-kernel and must be detected with
// the right ViolationKind, strict mode must throw at the detection point,
// collect mode must record and keep running, and -- the determinism
// contract -- enabling the sanitizer must leave kernel event counts
// byte-identical (docs/static_analysis.md).

#include "simt/sanitizer.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

#include "core/pipeline.hpp"
#include "core/sample_select.hpp"
#include "core/status.hpp"
#include "simt/arch.hpp"
#include "simt/device.hpp"

namespace {

using namespace gpusel;

simt::Device make_strict() {
    // NOLINTNEXTLINE -- local device per test keeps shadow state isolated
    return simt::Device(simt::arch_v100());
}

std::vector<float> uniform_floats(std::size_t n, unsigned seed = 42) {
    std::mt19937 gen(seed);
    std::uniform_real_distribution<float> d(-1.0f, 1.0f);
    std::vector<float> v(n);
    for (auto& x : v) x = d(gen);
    return v;
}

/// Runs `f`, requires it to throw SanError, and returns the violation kind.
template <typename F>
simt::ViolationKind expect_san_error(F&& f) {
    try {
        f();
    } catch (const simt::SanError& e) {
        return e.violation().kind;
    }
    ADD_FAILURE() << "expected a SanError, none was thrown";
    return simt::ViolationKind::global_race;
}

// ---- mode parsing ---------------------------------------------------------

TEST(SanMode, ParsesEnvironmentGrammar) {
    const char* saved = std::getenv("GPUSEL_SAN");
    const std::string saved_copy = saved ? saved : "";

    ::unsetenv("GPUSEL_SAN");
    EXPECT_EQ(simt::Sanitizer::mode_from_env(), simt::SanMode::off);
    ::setenv("GPUSEL_SAN", "0", 1);
    EXPECT_EQ(simt::Sanitizer::mode_from_env(), simt::SanMode::off);
    ::setenv("GPUSEL_SAN", "1", 1);
    EXPECT_EQ(simt::Sanitizer::mode_from_env(), simt::SanMode::strict);
    ::setenv("GPUSEL_SAN", "strict", 1);
    EXPECT_EQ(simt::Sanitizer::mode_from_env(), simt::SanMode::strict);
    ::setenv("GPUSEL_SAN", "2", 1);
    EXPECT_EQ(simt::Sanitizer::mode_from_env(), simt::SanMode::collect);
    ::setenv("GPUSEL_SAN", "collect", 1);
    EXPECT_EQ(simt::Sanitizer::mode_from_env(), simt::SanMode::collect);
    ::setenv("GPUSEL_SAN", "bogus", 1);
    EXPECT_THROW((void)simt::Sanitizer::mode_from_env(), std::invalid_argument);

    if (saved) {
        ::setenv("GPUSEL_SAN", saved_copy.c_str(), 1);
    } else {
        ::unsetenv("GPUSEL_SAN");
    }
}

// ---- cross-block global races (broken micro-kernels) ----------------------

TEST(SimTSan, DetectsWriteWriteRaceAcrossBlocks) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::strict);
    auto buf = dev.alloc<std::int32_t>(8);
    const auto kind = expect_san_error([&] {
        dev.launch("ww_race", {.grid_dim = 2, .block_dim = 32}, [&](simt::BlockCtx& blk) {
            // BROKEN ON PURPOSE: both blocks store to the same word.
            blk.st(buf.span(), 0, blk.block_idx());
            blk.charge_global_write(sizeof(std::int32_t));
        });
    });
    EXPECT_EQ(kind, simt::ViolationKind::global_race);
}

TEST(SimTSan, DetectsReadWriteRaceAcrossBlocks) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::strict);
    auto buf = dev.alloc<std::int32_t>(8);
    const auto kind = expect_san_error([&] {
        dev.launch("rw_race", {.grid_dim = 2, .block_dim = 32}, [&](simt::BlockCtx& blk) {
            // BROKEN ON PURPOSE: block 0 writes the word block 1 reads.
            if (blk.block_idx() == 0) {
                blk.st(buf.span(), 0, 7);
            } else {
                (void)blk.ld(buf.span(), 0);
            }
            blk.charge_global_read(sizeof(std::int32_t));
        });
    });
    EXPECT_EQ(kind, simt::ViolationKind::global_race);
}

TEST(SimTSan, DetectsAtomicMixedWithPlainStore) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::strict);
    auto buf = dev.alloc<std::int32_t>(4);
    const auto kind = expect_san_error([&] {
        dev.launch("mixed_race", {.grid_dim = 2, .block_dim = 32}, [&](simt::BlockCtx& blk) {
            if (blk.block_idx() == 0) {
                // BROKEN ON PURPOSE: a plain store to an atomic counter.
                blk.st(buf.span(), 0, 1);
            } else {
                blk.warp_tiles_local(1, [&](simt::WarpCtx& w, std::size_t, std::size_t) {
                    const std::int32_t which[simt::kWarpSize] = {};
                    w.atomic_add(simt::AtomicSpace::global, buf.span(), which);
                });
            }
        });
    });
    EXPECT_EQ(kind, simt::ViolationKind::global_race);
}

TEST(SimTSan, AtomicOnlyContentionIsClean) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::strict);
    auto buf = dev.alloc<std::int32_t>(4);
    EXPECT_NO_THROW(dev.launch(
        "atomic_ok", {.grid_dim = 4, .block_dim = 32}, [&](simt::BlockCtx& blk) {
            blk.warp_tiles_local(1, [&](simt::WarpCtx& w, std::size_t, std::size_t) {
                const std::int32_t which[simt::kWarpSize] = {};
                w.atomic_add(simt::AtomicSpace::global, buf.span(), which);
            });
        }));
    ASSERT_NE(dev.sanitizer(), nullptr);
    EXPECT_EQ(dev.sanitizer()->total_violations(), 0u);
    EXPECT_GT(dev.sanitizer()->checks(), 0u);
    EXPECT_EQ(buf[0], 4);
}

// ---- shared-memory epoch hazards ------------------------------------------

TEST(SimTSan, DetectsCrossWarpSharedAccessWithoutSync) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::strict);
    const auto kind = expect_san_error([&] {
        dev.launch("sh_epoch", {.grid_dim = 1, .block_dim = 64}, [&](simt::BlockCtx& blk) {
            auto sh = blk.shared_array<std::int32_t>(32);
            // BROKEN ON PURPOSE: both warps hit sh[0] with no sync().
            blk.warp_tiles(64, [&](simt::WarpCtx&, std::size_t, std::size_t) {
                blk.shared_st(sh, 0, 1);
            });
            blk.sync();
        });
    });
    EXPECT_EQ(kind, simt::ViolationKind::shared_epoch);
}

TEST(SimTSan, SharedHandoffAfterSyncIsClean) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::strict);
    EXPECT_NO_THROW(dev.launch(
        "sh_handoff", {.grid_dim = 1, .block_dim = 64}, [&](simt::BlockCtx& blk) {
            auto sh = blk.shared_array<std::int32_t>(32);
            blk.warp_tiles(64, [&](simt::WarpCtx&, std::size_t base, std::size_t) {
                if (base == 0) blk.shared_st(sh, 0, 41);  // warp 0's tile only
            });
            blk.sync();  // epoch boundary: the handoff below is legal
            blk.warp_tiles(64, [&](simt::WarpCtx&, std::size_t, std::size_t) {
                (void)blk.shared_ld(sh, 0);
            });
            blk.sync();
        }));
}

// ---- out-of-bounds (always fatal, even in collect mode) --------------------

TEST(SimTSan, GlobalOobThrowsInCollectMode) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::collect);
    auto buf = dev.alloc<float>(16);
    const auto kind = expect_san_error([&] {
        dev.launch("oob_ld", {.grid_dim = 1, .block_dim = 32}, [&](simt::BlockCtx& blk) {
            // BROKEN ON PURPOSE: index == size.
            (void)blk.ld(buf.span(), buf.size());
        });
    });
    EXPECT_EQ(kind, simt::ViolationKind::global_oob);
}

TEST(SimTSan, WarpLoadBeyondSpanIsOob) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::strict);
    auto big = dev.alloc<float>(64);
    auto small = dev.alloc<float>(8);
    const auto kind = expect_san_error([&] {
        dev.launch("oob_warp_load", {.grid_dim = 1, .block_dim = 32}, [&](simt::BlockCtx& blk) {
            blk.warp_tiles(big.size(), [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                float regs[simt::kWarpSize];
                // BROKEN ON PURPOSE: tile base sized for `big`, span is `small`.
                w.load(std::span<const float>(small.span()), base, regs);
            });
        });
    });
    EXPECT_EQ(kind, simt::ViolationKind::global_oob);
}

TEST(SimTSan, SharedOobThrows) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::strict);
    const auto kind = expect_san_error([&] {
        dev.launch("oob_sh", {.grid_dim = 1, .block_dim = 32}, [&](simt::BlockCtx& blk) {
            auto sh = blk.shared_array<std::int32_t>(8);
            // BROKEN ON PURPOSE: one past the end of the shared array.
            blk.shared_st(sh, 8, 1);
        });
    });
    EXPECT_EQ(kind, simt::ViolationKind::shared_oob);
}

// ---- uninitialized reads of pool poison ------------------------------------

TEST(SimTSan, DetectsReadOfPoisonedPoolCheckout) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::strict);
    auto buf = dev.pooled<std::int32_t>(64);  // not zeroed: poison-filled
    const auto kind = expect_san_error([&] {
        dev.launch("uninit_ld", {.grid_dim = 1, .block_dim = 32}, [&](simt::BlockCtx& blk) {
            // BROKEN ON PURPOSE: read before any instrumented write.
            (void)blk.ld(buf.span(), 0);
        });
    });
    EXPECT_EQ(kind, simt::ViolationKind::uninit_read);
}

TEST(SimTSan, WriteThenReadOfPoolCheckoutIsClean) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::strict);
    auto buf = dev.pooled<std::int32_t>(64);
    EXPECT_NO_THROW(dev.launch(
        "init_then_ld", {.grid_dim = 1, .block_dim = 32}, [&](simt::BlockCtx& blk) {
            blk.st(buf.span(), 0, 123);
            EXPECT_EQ(blk.ld(buf.span(), 0), 123);
        }));
}

TEST(SimTSan, ZeroedPoolCheckoutIsClean) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::strict);
    auto buf = dev.pooled<std::int32_t>(64, /*stream=*/0, /*zeroed=*/true);
    EXPECT_NO_THROW(dev.launch(
        "zeroed_ld", {.grid_dim = 1, .block_dim = 32}, [&](simt::BlockCtx& blk) {
            EXPECT_EQ(blk.ld(buf.span(), 5), 0);
        }));
}

// ---- canary guard bands -----------------------------------------------------

TEST(SimTSan, DetectsCanaryClobberAtLaunchEnd) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::strict);
    auto buf = dev.alloc<float>(16);
    // BROKEN ON PURPOSE: a raw pointer write one past the user region --
    // exactly the kind of access the checked accessors would have rejected.
    buf.data()[buf.size()] = 1.0f;
    const auto kind = expect_san_error([&] {
        dev.launch("noop", {.grid_dim = 1, .block_dim = 32},
                   [](simt::BlockCtx& blk) { blk.charge_instr(1); });
    });
    EXPECT_EQ(kind, simt::ViolationKind::canary);
}

TEST(SimTSan, RecordsCanaryClobberAtBufferDestruction) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::collect);
    {
        auto buf = dev.alloc<float>(16);
        buf.data()[buf.size()] = 1.0f;  // BROKEN ON PURPOSE
    }  // unregister_region sweeps the canaries (record-only)
    ASSERT_NE(dev.sanitizer(), nullptr);
    const auto vs = dev.sanitizer()->violations();
    ASSERT_FALSE(vs.empty());
    EXPECT_EQ(vs.front().kind, simt::ViolationKind::canary);
}

// ---- collect mode -----------------------------------------------------------

TEST(SimTSan, CollectModeRecordsAndContinues) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::collect);
    auto buf = dev.alloc<std::int32_t>(8);
    EXPECT_NO_THROW(dev.launch(
        "ww_race_collect", {.grid_dim = 4, .block_dim = 32}, [&](simt::BlockCtx& blk) {
            blk.st(buf.span(), 0, blk.block_idx());  // BROKEN ON PURPOSE
        }));
    ASSERT_NE(dev.sanitizer(), nullptr);
    EXPECT_GE(dev.sanitizer()->total_violations(), 3u);  // blocks 1..3 conflict
    const auto vs = dev.sanitizer()->violations();
    ASSERT_FALSE(vs.empty());
    EXPECT_EQ(vs.front().kind, simt::ViolationKind::global_race);
    EXPECT_EQ(vs.front().kernel, "ww_race_collect");
    EXPECT_EQ(vs.front().primitive, "st");
    dev.sanitizer()->clear();
    EXPECT_EQ(dev.sanitizer()->total_violations(), 0u);
    EXPECT_TRUE(dev.sanitizer()->violations().empty());
}

// ---- determinism: event counts are untouched --------------------------------

TEST(SimTSan, KernelEventCountsAreByteIdenticalUnderSan) {
    const auto data = uniform_floats(std::size_t{1} << 14);
    const std::size_t rank = data.size() / 2;
    const core::SampleSelectConfig cfg;

    simt::Device dev_off(simt::arch_v100());
    dev_off.set_sanitizer(simt::SanMode::off);
    const auto r_off = core::sample_select<float>(dev_off, data, rank, cfg);

    simt::Device dev_on(simt::arch_v100());
    dev_on.set_sanitizer(simt::SanMode::strict);
    const auto r_on = core::sample_select<float>(dev_on, data, rank, cfg);

    EXPECT_EQ(r_off.value, r_on.value);
    EXPECT_EQ(dev_off.launch_count(), dev_on.launch_count());
    // The golden contract: same counters, field for field.
    EXPECT_EQ(dev_off.counter_totals(), dev_on.counter_totals());
    ASSERT_NE(dev_on.sanitizer(), nullptr);
    EXPECT_GT(dev_on.sanitizer()->checks(), 0u) << "sanitizer never engaged";
    EXPECT_EQ(dev_on.sanitizer()->total_violations(), 0u);
}

// ---- Status-channel integration ---------------------------------------------

TEST(SimTSan, SanErrorSurfacesAsSanitizerViolationStatus) {
    auto dev = make_strict();
    const core::SampleSelectConfig cfg;
    core::PipelineContext ctx(dev, cfg);
    const core::Status s = core::with_fault_retry(ctx, [] {
        simt::SanViolation v;
        v.kind = simt::ViolationKind::global_race;
        v.kernel = "synthetic";
        v.primitive = "st";
        throw simt::SanError(std::move(v));
    });
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code, core::SelectError::sanitizer_violation);
    // Never retried: a sanitizer violation is a bug, not bad luck.
    EXPECT_EQ(dev.robustness().launch_retries, 0u);
}

TEST(SimTSan, BrokenKernelUnderPipelineReportsTypedStatus) {
    auto dev = make_strict();
    dev.set_sanitizer(simt::SanMode::strict);
    auto buf = dev.alloc<std::int32_t>(8);
    const core::SampleSelectConfig cfg;
    core::PipelineContext ctx(dev, cfg);
    const core::Status s = core::with_fault_retry(ctx, [&] {
        dev.launch("pipeline_race", {.grid_dim = 2, .block_dim = 32},
                   [&](simt::BlockCtx& blk) { blk.st(buf.span(), 0, blk.block_idx()); });
    });
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code, core::SelectError::sanitizer_violation);
}

// ---- tracker underflow (PR 3 satellite: typed report, no bare assert) -------

TEST(AllocationTracker, RecordsUnderflowInsteadOfAsserting) {
    simt::AllocationTracker t;
    t.on_alloc(16);
    t.on_free(32);  // BROKEN ON PURPOSE: credits back more than in use
    EXPECT_EQ(t.underflow_count(), 1u);
    EXPECT_FALSE(t.underflow_note().empty());
    EXPECT_EQ(t.current(), 0u);
}

TEST(AllocationTracker, UnderflowSurfacesThroughStatusChannel) {
    auto dev = make_strict();
    const core::SampleSelectConfig cfg;
    core::PipelineContext ctx(dev, cfg);
    const core::Status s = core::with_fault_retry(
        ctx, [&] { dev.tracker().on_free(std::size_t{1} << 40); });
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code, core::SelectError::internal);
}

}  // namespace
