// Unit tests for the Welford summary accumulator (stats/summary.hpp).

#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
namespace {

using gpusel::stats::Accumulator;

TEST(Accumulator, EmptySummary) {
    Accumulator a;
    const auto s = a.summary();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
    EXPECT_EQ(s.stddev, 0.0);
}

TEST(Accumulator, SingleValue) {
    Accumulator a;
    a.add(5.0);
    const auto s = a.summary();
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.min, 5.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Accumulator, KnownMeanAndStddev) {
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    // sample stddev of this classic dataset: sqrt(32/7)
    EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, ResetClears) {
    Accumulator a;
    a.add(1.0);
    a.add(2.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    a.add(10.0);
    EXPECT_DOUBLE_EQ(a.mean(), 10.0);
}

TEST(Accumulator, NumericallyStableForLargeOffsets) {
    Accumulator a;
    const double off = 1e12;
    for (double x : {off + 1.0, off + 2.0, off + 3.0}) a.add(x);
    EXPECT_NEAR(a.mean(), off + 2.0, 1e-3);
    EXPECT_NEAR(a.stddev(), 1.0, 1e-6);
}

TEST(FormatMeanStd, ContainsBothNumbers) {
    Accumulator a;
    a.add(1.0);
    a.add(3.0);
    const auto s = gpusel::stats::format_mean_std(a.summary());
    EXPECT_NE(s.find("2"), std::string::npos);
    EXPECT_NE(s.find("+/-"), std::string::npos);
}

}  // namespace
