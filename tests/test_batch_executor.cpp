// Tests for the stream-parallel batch executor (core/batch_executor.hpp):
// fan-width policy, per-problem event-stream identity with the serial
// path, simulated-time overlap (the ISSUE acceptance bound: 8 problems of
// n = 2^20 on 4 streams finish in <= 0.6x their serial sum), the top-k
// and multiselect batch front-ends, and a seeded fault soak over
// multi-stream batches (run under GPUSEL_SAN=1 by the soak ctest entry).

#include "core/batch_executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/multiselect.hpp"
#include "core/sample_select.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simt/arch.hpp"
#include "simt/device.hpp"
#include "simt/fault.hpp"
#include "simt/timing.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;

std::vector<float> make_data(std::size_t n, std::uint64_t seed) {
    return data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = seed});
}

/// Env-var guard: sets GPUSEL_STREAMS for one scope, restores after.
class StreamsEnv {
public:
    explicit StreamsEnv(const char* value) {
        const char* old = std::getenv("GPUSEL_STREAMS");
        if (old != nullptr) saved_ = old;
        had_ = old != nullptr;
        if (value != nullptr) {
            ::setenv("GPUSEL_STREAMS", value, 1);
        } else {
            ::unsetenv("GPUSEL_STREAMS");
        }
    }
    ~StreamsEnv() {
        if (had_) {
            ::setenv("GPUSEL_STREAMS", saved_.c_str(), 1);
        } else {
            ::unsetenv("GPUSEL_STREAMS");
        }
    }

private:
    std::string saved_;
    bool had_ = false;
};

TEST(BatchExecutor, ResolveStreamCountPolicy) {
    StreamsEnv env(nullptr);  // make sure the ambient variable is unset
    EXPECT_EQ(core::resolve_stream_count(0), 1);
    EXPECT_EQ(core::resolve_stream_count(1), 1);
    EXPECT_EQ(core::resolve_stream_count(3), 3);
    EXPECT_EQ(core::resolve_stream_count(8), 8);
    EXPECT_EQ(core::resolve_stream_count(100), 8);  // default cap
    EXPECT_EQ(core::resolve_stream_count(100, 4), 4);
    EXPECT_EQ(core::resolve_stream_count(2, 16), 2);  // clamped to batch
}

TEST(BatchExecutor, ResolveStreamCountReadsEnvironment) {
    StreamsEnv env("5");
    EXPECT_EQ(core::resolve_stream_count(100), 5);
    EXPECT_EQ(core::resolve_stream_count(3), 3);       // still clamped to batch
    EXPECT_EQ(core::resolve_stream_count(100, 2), 2);  // explicit request wins
}

TEST(BatchExecutor, ResolveStreamCountRejectsMalformedEnvironment) {
    // Every malformed GPUSEL_STREAMS value is a typed invalid_argument,
    // never a silent fallback to the default fan (docs/robustness.md).
    for (const char* bad : {"abc", "0", "-3", "99999", "7junk", "7.5", "++"}) {
        StreamsEnv env(bad);
        const auto r = core::try_resolve_stream_count(100);
        ASSERT_FALSE(r.ok()) << "GPUSEL_STREAMS=" << bad;
        EXPECT_EQ(r.status().code, core::SelectError::invalid_argument)
            << "GPUSEL_STREAMS=" << bad;
        EXPECT_FALSE(r.status().message.empty());
        // The legacy throwing wrapper surfaces the same error (throw_status
        // maps invalid_argument onto the standard exception).
        EXPECT_THROW((void)core::resolve_stream_count(100), std::invalid_argument);
    }
}

TEST(BatchExecutor, ResolveStreamCountAcceptsPaddedEnvironment) {
    {
        StreamsEnv env("  6  ");  // surrounding whitespace is not an error
        EXPECT_EQ(core::try_resolve_stream_count(100).take_or_throw(), 6);
    }
    {
        StreamsEnv env("");  // empty string means unset, not malformed
        EXPECT_EQ(core::try_resolve_stream_count(100).take_or_throw(), 8);
    }
    {
        StreamsEnv env("256");  // cap itself is still legal
        EXPECT_EQ(core::try_resolve_stream_count(1000).take_or_throw(), 256);
    }
}

TEST(BatchExecutor, ResolveStreamCountExplicitRequestSkipsEnvironment) {
    StreamsEnv env("abc");  // malformed, but an explicit request never reads it
    EXPECT_EQ(core::try_resolve_stream_count(100, 4).take_or_throw(), 4);
}

TEST(BatchExecutor, StreamFanLeasesAndReleases) {
    simt::Device dev(simt::arch_v100());
    const int before = dev.stream_count();
    {
        core::StreamFan fan(dev, 4);
        EXPECT_EQ(fan.count(), 4);
        EXPECT_EQ(fan.stream(0), 0);
        (void)fan.fork();
        fan.join();
    }
    {
        // A second fan re-leases the same stream slots instead of growing
        // the table.
        core::StreamFan fan(dev, 4);
        EXPECT_EQ(dev.stream_count(), before + 3);
        (void)fan.fork();
        fan.join();
    }
}

TEST(BatchExecutor, StreamFanDestructorJoinsUnjoinedLanes) {
    // An early error return (or exception) can destroy a forked fan before
    // join(); the destructor must perform the join itself so a lease is
    // never released with un-joined lane work pending.
    simt::Device dev(simt::arch_v100());
    auto buf = dev.alloc<float>(1 << 12);
    {
        core::StreamFan fan(dev, 4);
        (void)fan.fork();
        const int lane = fan.stream(3);
        dev.launch("lane_work", {.grid_dim = 4, .block_dim = 256, .stream = lane},
                   [&](simt::BlockCtx& blk) {
                       blk.warp_tiles(buf.size(),
                                      [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                                          float regs[simt::kWarpSize] = {};
                                          w.store(buf.span(), base, regs);
                                      });
                   });
        EXPECT_GT(dev.stream_clock(lane), dev.stream_clock(0));
        // Scope exit WITHOUT join(): the destructor joins, then releases.
    }
    EXPECT_DOUBLE_EQ(dev.stream_clock(0), dev.elapsed_ns());
}

TEST(BatchExecutor, FaultedRunsDoNotLeakStreamLeases) {
    // Regression for the fork/join exception-safety audit: a run that
    // fails between fork() and join() must still join the lanes and return
    // every lease -- the stream table stays at the fan width instead of
    // growing per failure, and the base stream always ends caught up.
    simt::Device dev(simt::arch_v100());
    core::SampleSelectConfig cfg;
    std::vector<std::vector<float>> inputs;
    std::vector<core::BatchProblem<float>> problems;
    for (std::size_t i = 0; i < 4; ++i) {
        inputs.push_back(make_data(20000 + 1000 * i, 77 + i));
        problems.push_back({inputs.back(), inputs.back().size() / 2});
    }
    int failures = 0;
    for (std::size_t round = 0; round < 30; ++round) {
        // Hard fault rates: most rounds exhaust the bounded retries and
        // unwind out of the batch mid-flight.
        simt::FaultSpec spec;
        spec.seed = 90 + round;
        spec.alloc_rate = 0.30;
        spec.launch_rate = 0.30;
        dev.set_faults(spec);
        core::BatchExecutor<float> exec(dev, cfg, {.streams = 4});
        auto run = exec.run(problems);
        if (!run.ok()) ++failures;
        EXPECT_LE(dev.stream_count(), 4) << "round " << round;
        EXPECT_DOUBLE_EQ(dev.stream_clock(0), dev.elapsed_ns()) << "round " << round;
    }
    dev.clear_faults();
    EXPECT_GT(failures, 0);  // the schedule really exercised the error path
    core::BatchExecutor<float> retry(dev, cfg, {.streams = 4});
    auto clean = retry.run(problems);
    ASSERT_TRUE(clean.ok()) << clean.status().message;
    EXPECT_EQ(dev.stream_count(), 4);
}

TEST(BatchExecutor, PerProblemEventStreamsMatchSerial) {
    core::SampleSelectConfig cfg;
    constexpr std::size_t kProblems = 5;
    std::vector<std::vector<float>> inputs;
    inputs.reserve(kProblems);
    std::vector<core::BatchProblem<float>> problems;
    for (std::size_t i = 0; i < kProblems; ++i) {
        inputs.push_back(make_data(40000 + 4000 * i, 100 + i));
        problems.push_back({inputs.back(), inputs.back().size() / 2});
    }

    simt::Device dev(simt::arch_v100());
    core::BatchExecutor<float> exec(dev, cfg, {.streams = 2});
    auto run = exec.run(problems);
    ASSERT_TRUE(run.ok()) << run.status().message;
    const auto& res = run.value();
    ASSERT_EQ(res.items.size(), kProblems);
    EXPECT_EQ(res.streams_used, 2);
    EXPECT_EQ(res.recursive_problems, kProblems);

    const auto& batch_profiles = dev.profiles();
    for (std::size_t i = 0; i < kProblems; ++i) {
        // The serial reference: the same problem alone on a fresh device.
        simt::Device sdev(simt::arch_v100());
        auto ref = core::try_sample_select<float>(sdev, problems[i].data, problems[i].rank, cfg);
        ASSERT_TRUE(ref.ok());
        EXPECT_EQ(res.items[i].value, ref.value().value) << "problem " << i;

        const auto& ref_profiles = sdev.profiles();
        const std::uint64_t first = res.items[i].first_launch;
        const std::uint64_t last = res.items[i].last_launch;
        ASSERT_EQ(last - first, ref_profiles.size()) << "problem " << i;
        for (std::size_t j = 0; j < ref_profiles.size(); ++j) {
            const simt::KernelProfile& a = batch_profiles[first + j];
            const simt::KernelProfile& b = ref_profiles[j];
            EXPECT_EQ(a.name, b.name) << "problem " << i << " launch " << j;
            EXPECT_EQ(a.grid_dim, b.grid_dim);
            EXPECT_EQ(a.block_dim, b.block_dim);
            EXPECT_EQ(a.origin, b.origin);
            EXPECT_EQ(a.unroll, b.unroll);
            EXPECT_EQ(a.counters, b.counters) << "problem " << i << " launch " << j;
            // The only difference: the batch run tags the problem's stream.
            EXPECT_EQ(a.stream, res.items[i].stream);
        }
    }
}

TEST(BatchExecutor, EightProblemsOnFourStreamsOverlap) {
    core::SampleSelectConfig cfg;
    constexpr std::size_t kN = std::size_t{1} << 20;
    constexpr std::size_t kProblems = 8;
    std::vector<std::vector<float>> inputs;
    inputs.reserve(kProblems);
    std::vector<core::BatchProblem<float>> problems;
    for (std::size_t i = 0; i < kProblems; ++i) {
        inputs.push_back(make_data(kN, 7 + i));
        problems.push_back({inputs.back(), kN / 2});
    }

    simt::Device dev(simt::arch_v100());
    core::BatchExecutor<float> exec(dev, cfg, {.streams = 4});
    auto run = exec.run(problems);
    ASSERT_TRUE(run.ok()) << run.status().message;
    const auto& res = run.value();
    EXPECT_EQ(res.streams_used, 4);
    ASSERT_GT(res.serial_ns, 0.0);
    // The acceptance bound: the 4-stream wall clock must be well under the
    // serial sum of the same launches.
    EXPECT_LE(res.wall_ns, 0.6 * res.serial_ns)
        << "overlap_x = " << res.overlap_x();
    // The timing model's profile-level overlap summary agrees.
    const simt::StreamOverlap ov = simt::summarize_overlap(dev.profiles());
    EXPECT_EQ(ov.streams, 4);
    EXPECT_GT(ov.overlap_x(), 1.0);

    for (std::size_t i = 0; i < kProblems; ++i) {
        EXPECT_EQ(stats::rank_error<float>(problems[i].data, res.items[i].value,
                                           problems[i].rank),
                  0u)
            << "problem " << i;
    }
}

TEST(BatchExecutor, CoalescesShortProblemsPerStream) {
    core::SampleSelectConfig cfg;
    constexpr std::size_t kProblems = 10;
    std::vector<std::vector<float>> inputs;
    inputs.reserve(kProblems);
    std::vector<core::BatchProblem<float>> problems;
    for (std::size_t i = 0; i < kProblems; ++i) {
        inputs.push_back(make_data(64 + 8 * i, 31 + i));
        problems.push_back({inputs.back(), i % inputs.back().size()});
    }

    simt::Device dev(simt::arch_v100());
    core::BatchExecutor<float> exec(dev, cfg, {.streams = 3});
    auto run = exec.run(problems);
    ASSERT_TRUE(run.ok()) << run.status().message;
    const auto& res = run.value();
    EXPECT_EQ(res.coalesced_problems, kProblems);
    EXPECT_EQ(res.recursive_problems, 0u);
    // One fused launch per lane that holds problems, nothing else.
    EXPECT_EQ(res.coalesced_launches, 3u);
    EXPECT_EQ(res.launches, 3u);
    for (std::size_t i = 0; i < kProblems; ++i) {
        EXPECT_TRUE(res.items[i].coalesced);
        EXPECT_EQ(stats::rank_error<float>(problems[i].data, res.items[i].value,
                                           problems[i].rank),
                  0u)
            << "problem " << i;
    }
}

TEST(BatchExecutor, NanTailRanksAnswerQuietNan) {
    core::SampleSelectConfig cfg;
    std::vector<float> with_nans = make_data(1000, 3);
    with_nans[10] = std::numeric_limits<float>::quiet_NaN();
    with_nans[500] = std::numeric_limits<float>::quiet_NaN();
    std::vector<float> clean = make_data(1000, 4);
    const std::vector<core::BatchProblem<float>> problems{
        {with_nans, 999},  // inside the 2-element NaN tail
        {clean, 500},
    };
    simt::Device dev(simt::arch_v100());
    core::BatchExecutor<float> exec(dev, cfg, {.streams = 2});
    auto run = exec.run(problems);
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(std::isnan(run.value().items[0].value));
    EXPECT_EQ(run.value().nan_count, 2u);
    EXPECT_FALSE(std::isnan(run.value().items[1].value));

    core::SampleSelectConfig reject = cfg;
    reject.nan_policy = core::NanPolicy::reject;
    simt::Device dev2(simt::arch_v100());
    core::BatchExecutor<float> exec2(dev2, reject, {.streams = 2});
    auto r2 = exec2.run(problems);
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.status().code, core::SelectError::nan_keys_rejected);
}

TEST(BatchExecutor, TopKBatchMatchesSerial) {
    core::SampleSelectConfig cfg;
    constexpr std::size_t kProblems = 6;
    std::vector<std::vector<float>> inputs;
    inputs.reserve(kProblems);
    std::vector<core::TopKBatchProblem<float>> problems;
    for (std::size_t i = 0; i < kProblems; ++i) {
        inputs.push_back(make_data(20000 + 2000 * i, 400 + i));
        problems.push_back({inputs.back(), 100 + 10 * i});
    }

    simt::Device dev(simt::arch_v100());
    auto run = core::try_topk_largest_batch<float>(dev, problems, cfg, {.streams = 3});
    ASSERT_TRUE(run.ok()) << run.status().message;
    const auto& res = run.value();
    ASSERT_EQ(res.items.size(), kProblems);
    EXPECT_EQ(res.streams_used, 3);
    EXPECT_GE(res.serial_ns, res.wall_ns - 1e-6);

    std::uint64_t serial_launches = 0;
    for (std::size_t i = 0; i < kProblems; ++i) {
        simt::Device sdev(simt::arch_v100());
        auto ref = core::try_topk_largest<float>(sdev, problems[i].data, problems[i].k, cfg);
        ASSERT_TRUE(ref.ok());
        serial_launches += ref.value().launches;
        EXPECT_EQ(res.items[i].threshold, ref.value().threshold) << "problem " << i;
        auto got = res.items[i].elements;
        auto want = ref.value().elements;
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        EXPECT_EQ(got, want) << "problem " << i;
    }
    EXPECT_EQ(res.launches, serial_launches);
}

TEST(BatchExecutor, MultiSelectFanMatchesSerialAndNeverSlower) {
    const auto input = make_data(200000, 97);
    std::vector<std::size_t> ranks;
    for (std::size_t i = 0; i < 8; ++i) ranks.push_back(input.size() / 9 * (i + 1));

    core::SampleSelectConfig cfg;
    core::MultiSelectResult<float> serial;
    {
        StreamsEnv env("1");
        simt::Device dev(simt::arch_v100());
        serial = core::multi_select<float>(dev, input, ranks, cfg);
        EXPECT_EQ(serial.streams_used, 1);
    }
    core::MultiSelectResult<float> fanned;
    {
        StreamsEnv env("4");
        simt::Device dev(simt::arch_v100());
        fanned = core::multi_select<float>(dev, input, ranks, cfg);
        EXPECT_EQ(fanned.streams_used, 4);
    }
    // The host recurses depth-first either way, so results and launch
    // counts are identical; only the overlap in simulated time differs.
    EXPECT_EQ(fanned.values, serial.values);
    EXPECT_EQ(fanned.launches, serial.launches);
    EXPECT_LE(fanned.sim_ns, serial.sim_ns + 1e-6);
}

// Seeded fault soak over multi-stream batches (docs/robustness.md): every
// scenario must end in a provably correct batch result or a typed Status,
// never a crash or a silently wrong answer.  The soak ctest entry re-runs
// this suite with GPUSEL_SAN=1 and a raised GPUSEL_SOAK_SCENARIOS.
class BatchSoak : public ::testing::Test {};

std::size_t soak_scenarios() {
    if (const char* env = std::getenv("GPUSEL_SOAK_SCENARIOS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    return 40;
}

simt::FaultSpec soak_faults(std::size_t scenario) {
    simt::FaultSpec spec;
    spec.seed = 11 * scenario + 3;
    switch (scenario % 4) {
        case 0: break;  // fault-free control
        case 1: spec.alloc_rate = 0.02; break;
        case 2: spec.launch_rate = 0.02; break;
        default:
            spec.alloc_rate = 0.01;
            spec.launch_rate = 0.01;
            spec.stall_rate = 0.03;
            spec.stall_ns = 250.0;
            break;
    }
    return spec;
}

TEST_F(BatchSoak, MultiStreamBatchesUnderFaults) {
    const std::size_t scenarios = soak_scenarios();
    for (std::size_t sc = 0; sc < scenarios; ++sc) {
        simt::Device dev(simt::arch_v100());
        dev.set_faults(soak_faults(sc));

        core::SampleSelectConfig cfg;
        cfg.seed = 500 + sc;
        std::vector<std::vector<float>> inputs;
        inputs.reserve(6);
        std::vector<core::BatchProblem<float>> problems;
        for (std::size_t i = 0; i < 6; ++i) {
            // Mixed batch: coalesced short sequences and recursive long ones.
            const std::size_t n = (i % 2 == 0) ? 256 + 32 * i : 9000 + 500 * i;
            inputs.push_back(make_data(n, 1000 * sc + i));
            problems.push_back({inputs.back(), (n / 3) * (i % 3)});
        }

        core::BatchExecutor<float> exec(dev, cfg,
                                        {.streams = 1 + static_cast<int>(sc % 4)});
        auto run = exec.run(problems);
        if (!run.ok()) {
            // Exhausted injected faults are acceptable; contract violations
            // and internal errors are not.
            EXPECT_NE(run.status().code, core::SelectError::internal)
                << "scenario " << sc << ": " << run.status().message;
            EXPECT_NE(run.status().code, core::SelectError::sanitizer_violation)
                << "scenario " << sc << ": " << run.status().message;
            continue;
        }
        for (std::size_t i = 0; i < problems.size(); ++i) {
            EXPECT_EQ(stats::rank_error<float>(problems[i].data,
                                               run.value().items[i].value, problems[i].rank),
                      0u)
                << "scenario " << sc << " problem " << i;
        }
    }
}

}  // namespace
