// Parameterized equivalence tests for the simd lane-vector layer: every
// vector tier the build + host supports must produce bit-identical results
// to the scalar reference -- oracles, bucket totals and KernelCounters are
// part of the simulator's observable contract, so "close" is not enough.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/count_kernel.hpp"
#include "core/sample_kernel.hpp"
#include "core/searchtree.hpp"
#include "data/distributions.hpp"
#include "simt/device.hpp"
#include "simt/simd.hpp"

namespace {

using namespace gpusel;
using simt::simd::Level;

/// Random values in [-4, 4) with the float special cases (NaN, +-inf,
/// +-0) planted so every comparison path is exercised.
template <typename T>
std::vector<T> random_values(std::size_t n, std::uint64_t seed, bool specials = true) {
    std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
    std::uniform_real_distribution<T> dist(T(-4), T(4));
    std::vector<T> v(n);
    for (auto& x : v) x = dist(rng);
    if (specials && n >= 8) {
        v[1] = std::numeric_limits<T>::quiet_NaN();
        v[3] = std::numeric_limits<T>::infinity();
        v[5] = -std::numeric_limits<T>::infinity();
        v[6] = T(-0.0);
        v[7] = T(0.0);
    }
    return v;
}

/// Runs `fn` once at `lvl` and once at the scalar tier, restoring the
/// ambient cap afterwards.
template <typename Fn>
void at_level(Level lvl, Fn&& fn) {
    simt::simd::set_level(lvl);
    fn();
    simt::simd::set_enabled(true);
}

class SimdEquivalence : public ::testing::TestWithParam<Level> {
protected:
    void SetUp() override {
        simt::simd::set_level(GetParam());
        const bool supported = simt::simd::active_level() == GetParam();
        simt::simd::set_enabled(true);
        if (!supported) {
            GTEST_SKIP() << "tier " << simt::simd::level_name(GetParam())
                         << " not available in this build/host";
        }
    }
    void TearDown() override { simt::simd::set_enabled(true); }
};

template <typename T>
void check_traverse(Level lvl) {
    std::mt19937 rng(7);
    for (const int height : {1, 2, 3, 4, 5, 6, 8}) {
        const auto b = std::size_t{1} << height;
        std::vector<T> splitters = random_values<T>(b - 1, static_cast<std::uint64_t>(100 + height), /*specials=*/false);
        std::sort(splitters.begin(), splitters.end());
        const auto tree = core::SearchTree<T>::build(splitters);
        ASSERT_EQ(tree.leq32.size(), tree.leq.size());
        for (const int lanes : {1, 3, 17, 31, 32}) {
            const auto elems = random_values<T>(32, rng());
            std::int32_t got[32];
            std::int32_t want[32];
            at_level(lvl, [&] {
                simt::simd::traverse_tree(tree.nodes.data(), tree.leq32.data(), tree.height,
                                          elems.data(), lanes, got);
            });
            at_level(Level::scalar, [&] {
                simt::simd::traverse_tree(tree.nodes.data(), tree.leq32.data(), tree.height,
                                          elems.data(), lanes, want);
            });
            for (int l = 0; l < lanes; ++l) {
                ASSERT_EQ(got[l], want[l]) << "height=" << height << " lanes=" << lanes
                                           << " lane=" << l << " elem=" << elems[static_cast<std::size_t>(l)];
                ASSERT_GE(got[l], 0);
                ASSERT_LT(got[l], static_cast<std::int32_t>(b));
            }
        }
    }
}

TEST_P(SimdEquivalence, TraverseTreeFloat) { check_traverse<float>(GetParam()); }
TEST_P(SimdEquivalence, TraverseTreeDouble) { check_traverse<double>(GetParam()); }

template <typename T>
void check_partitions(Level lvl) {
    std::mt19937 rng(11);
    const T pivots[] = {T(0), T(-0.0), T(1.25), std::numeric_limits<T>::infinity(),
                        std::numeric_limits<T>::quiet_NaN()};
    for (const int lanes : {1, 5, 16, 29, 32}) {
        for (const T pivot : pivots) {
            const auto elems = random_values<T>(32, rng());
            std::int32_t tri_got[32], tri_want[32], bi_got[32], bi_want[32];
            std::uint32_t lt_got, lt_want, eq_got, eq_want;
            bool plt_got[32], plt_want[32], pgt_got[32], pgt_want[32];
            at_level(lvl, [&] {
                simt::simd::tripartition_sides(elems.data(), pivot, lanes, tri_got);
                simt::simd::bipartition_sides(elems.data(), pivot, lanes, bi_got);
                lt_got = simt::simd::cmp_lt_mask(elems.data(), pivot, lanes);
                eq_got = simt::simd::cmp_eq_mask(elems.data(), pivot, lanes);
                simt::simd::pred_lt(elems.data(), pivot, lanes, plt_got);
                simt::simd::pred_gt(elems.data(), pivot, lanes, pgt_got);
            });
            at_level(Level::scalar, [&] {
                simt::simd::tripartition_sides(elems.data(), pivot, lanes, tri_want);
                simt::simd::bipartition_sides(elems.data(), pivot, lanes, bi_want);
                lt_want = simt::simd::cmp_lt_mask(elems.data(), pivot, lanes);
                eq_want = simt::simd::cmp_eq_mask(elems.data(), pivot, lanes);
                simt::simd::pred_lt(elems.data(), pivot, lanes, plt_want);
                simt::simd::pred_gt(elems.data(), pivot, lanes, pgt_want);
            });
            EXPECT_EQ(lt_got, lt_want) << "pivot=" << pivot << " lanes=" << lanes;
            EXPECT_EQ(eq_got, eq_want) << "pivot=" << pivot << " lanes=" << lanes;
            for (int l = 0; l < lanes; ++l) {
                ASSERT_EQ(tri_got[l], tri_want[l]) << "lane " << l << " pivot " << pivot;
                ASSERT_EQ(bi_got[l], bi_want[l]) << "lane " << l << " pivot " << pivot;
                ASSERT_EQ(plt_got[l], plt_want[l]) << "lane " << l << " pivot " << pivot;
                ASSERT_EQ(pgt_got[l], pgt_want[l]) << "lane " << l << " pivot " << pivot;
            }
        }
    }
}

TEST_P(SimdEquivalence, PartitionsAndMasksFloat) { check_partitions<float>(GetParam()); }
TEST_P(SimdEquivalence, PartitionsAndMasksDouble) { check_partitions<double>(GetParam()); }

TEST_P(SimdEquivalence, GatherBlendPack) {
    std::mt19937 rng(13);
    const auto table = random_values<float>(64, rng());
    const auto a = random_values<float>(32, rng());
    const auto b = random_values<float>(32, rng());
    std::vector<std::int32_t> idx(32);
    for (auto& i : idx) i = static_cast<std::int32_t>(rng() % 64);
    std::vector<std::int32_t> bytes(32);
    for (auto& v : bytes) v = static_cast<std::int32_t>(rng() % 256);
    for (const int lanes : {1, 9, 24, 32}) {
        const auto take_b = static_cast<std::uint32_t>(rng());
        float g_got[32], g_want[32], bl_got[32], bl_want[32];
        std::uint8_t p_got[32], p_want[32];
        at_level(GetParam(), [&] {
            simt::simd::gather(table.data(), idx.data(), lanes, g_got);
            simt::simd::blend(a.data(), b.data(), take_b, lanes, bl_got);
            simt::simd::pack_low_bytes(bytes.data(), lanes, p_got);
        });
        at_level(Level::scalar, [&] {
            simt::simd::gather(table.data(), idx.data(), lanes, g_want);
            simt::simd::blend(a.data(), b.data(), take_b, lanes, bl_want);
            simt::simd::pack_low_bytes(bytes.data(), lanes, p_want);
        });
        EXPECT_EQ(std::memcmp(g_got, g_want, sizeof(float) * static_cast<std::size_t>(lanes)), 0);
        EXPECT_EQ(std::memcmp(bl_got, bl_want, sizeof(float) * static_cast<std::size_t>(lanes)), 0);
        EXPECT_EQ(std::memcmp(p_got, p_want, static_cast<std::size_t>(lanes)), 0);
    }
}

template <typename T>
void check_bitonic(Level lvl) {
    std::mt19937 rng(17);
    for (const std::size_t m : {std::size_t{32}, std::size_t{64}, std::size_t{256}}) {
        auto ref = random_values<T>(m, rng());
        auto vec = ref;
        for (std::size_t k = 2; k <= m; k *= 2) {
            for (std::size_t j = k / 2; j >= 1; j /= 2) {
                at_level(lvl, [&] { simt::simd::bitonic_step(vec.data(), m, j, k); });
                at_level(Level::scalar, [&] { simt::simd::bitonic_step(ref.data(), m, j, k); });
                // Bit-exact after every single network step, NaNs included.
                ASSERT_EQ(std::memcmp(vec.data(), ref.data(), m * sizeof(T)), 0)
                    << "m=" << m << " k=" << k << " j=" << j;
            }
        }
    }
}

TEST_P(SimdEquivalence, BitonicNetworkFloat) { check_bitonic<float>(GetParam()); }
TEST_P(SimdEquivalence, BitonicNetworkDouble) { check_bitonic<double>(GetParam()); }

TEST_P(SimdEquivalence, HistogramAccumulate) {
    std::mt19937 rng(19);
    for (const std::size_t bins : {std::size_t{2}, std::size_t{256}, std::size_t{1024}}) {
        for (const int lanes : {1, 7, 32}) {
            std::vector<std::int32_t> bucket(static_cast<std::size_t>(lanes));
            for (auto& b : bucket) b = static_cast<std::int32_t>(rng() % bins);
            std::vector<std::int32_t> got(bins, 0);
            std::vector<std::int32_t> want(bins, 0);
            int d_got = 0;
            int d_want = 0;
            at_level(GetParam(), [&] {
                d_got = simt::simd::histogram_accumulate(got.data(), bins, bucket.data(), 1,
                                                         lanes);
            });
            at_level(Level::scalar, [&] {
                d_want = simt::simd::histogram_accumulate(want.data(), bins, bucket.data(), 1,
                                                          lanes);
            });
            EXPECT_EQ(d_got, d_want);
            EXPECT_EQ(got, want);
        }
    }
}

/// Full count-kernel pipeline: oracles, per-block bucket counts and the
/// exact KernelCounters must match the scalar tier across distributions
/// and both atomic strategies.
struct CountRun {
    std::vector<std::uint8_t> oracles;
    std::vector<std::int32_t> block_counts;
    simt::KernelCounters totals;
};

CountRun run_count(const std::vector<float>& data, bool warp_agg) {
    simt::Device dev(simt::arch_v100(), {.record_profiles = false});
    core::SampleSelectConfig cfg;
    cfg.warp_aggregation = warp_agg;
    const auto tree =
        core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host);
    auto oracles = dev.alloc<std::uint8_t>(data.size());
    auto totals = dev.alloc<std::int32_t>(static_cast<std::size_t>(tree.num_buckets));
    const int grid = simt::suggest_grid(dev.arch(), data.size(), cfg.block_dim, cfg.unroll);
    auto block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) *
                                                static_cast<std::size_t>(tree.num_buckets));
    core::count_kernel<float>(dev, data, tree, oracles.span(), totals.span(),
                              block_counts.span(), cfg, simt::LaunchOrigin::host);
    return {{oracles.span().begin(), oracles.span().end()},
            {block_counts.span().begin(), block_counts.span().end()},
            dev.counter_totals()};
}

TEST_P(SimdEquivalence, CountKernelPipeline) {
    const data::Distribution dists[] = {
        data::Distribution::uniform_real, data::Distribution::uniform_distinct,
        data::Distribution::normal, data::Distribution::sorted_ascending};
    for (const auto dist : dists) {
        const auto data =
            data::generate<float>({.n = 1 << 14, .dist = dist, .distinct_values = 64, .seed = 5});
        for (const bool agg : {false, true}) {
            CountRun got, want;
            at_level(GetParam(), [&] { got = run_count(data, agg); });
            at_level(Level::scalar, [&] { want = run_count(data, agg); });
            EXPECT_EQ(got.oracles, want.oracles)
                << "dist=" << static_cast<int>(dist) << " agg=" << agg;
            EXPECT_EQ(got.block_counts, want.block_counts)
                << "dist=" << static_cast<int>(dist) << " agg=" << agg;
            EXPECT_EQ(got.totals, want.totals)
                << "dist=" << static_cast<int>(dist) << " agg=" << agg;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Tiers, SimdEquivalence,
                         ::testing::Values(Level::scalar, Level::sse2, Level::avx2,
                                           Level::avx512),
                         [](const ::testing::TestParamInfo<Level>& pinfo) {
                             return simt::simd::level_name(pinfo.param);
                         });

/// The parallel block scheduler must not change any observable event
/// count: per-block counters are merged in block order regardless of which
/// host thread ran the block.
TEST(SimdWorkers, ParallelMatchesInline) {
    const auto data = data::generate<float>(
        {.n = 1 << 15, .dist = data::Distribution::uniform_real, .seed = 23});
    auto run = [&](unsigned workers, bool agg) {
        simt::Device dev(simt::arch_v100(),
                         {.host_workers = workers, .record_profiles = false});
        core::SampleSelectConfig cfg;
        cfg.warp_aggregation = agg;
        const auto tree =
            core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host);
        auto oracles = dev.alloc<std::uint8_t>(data.size());
        auto totals = dev.alloc<std::int32_t>(static_cast<std::size_t>(tree.num_buckets));
        const int grid =
            simt::suggest_grid(dev.arch(), data.size(), cfg.block_dim, cfg.unroll);
        auto block_counts = dev.alloc<std::int32_t>(
            static_cast<std::size_t>(grid) * static_cast<std::size_t>(tree.num_buckets));
        core::count_kernel<float>(dev, data, tree, oracles.span(), totals.span(),
                                  block_counts.span(), cfg, simt::LaunchOrigin::host);
        return std::pair{std::vector<std::uint8_t>(oracles.span().begin(), oracles.span().end()),
                         dev.counter_totals()};
    };
    for (const bool agg : {false, true}) {
        const auto [oracles0, totals0] = run(0, agg);
        for (const unsigned workers : {1u, 3u, 7u}) {
            const auto [oraclesN, totalsN] = run(workers, agg);
            EXPECT_EQ(oraclesN, oracles0) << "workers=" << workers << " agg=" << agg;
            EXPECT_EQ(totalsN, totals0) << "workers=" << workers << " agg=" << agg;
        }
    }
}

}  // namespace
