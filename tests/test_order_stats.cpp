// Unit tests for order-statistics utilities (stats/order_stats.hpp).

#include "stats/order_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace gpusel::stats;

TEST(NthElementReference, SimpleRanks) {
    std::vector<float> v{5, 1, 4, 2, 3};
    EXPECT_EQ(nth_element_reference(v, 0), 1.0f);
    EXPECT_EQ(nth_element_reference(v, 2), 3.0f);
    EXPECT_EQ(nth_element_reference(v, 4), 5.0f);
}

TEST(NthElementReference, OutOfRangeThrows) {
    std::vector<float> v{1, 2};
    EXPECT_THROW((void)nth_element_reference(v, 2), std::out_of_range);
}

TEST(MinRank, CountsStrictlySmaller) {
    const std::vector<double> v{1, 2, 2, 3};
    EXPECT_EQ(min_rank<double>(v, 1.0), 0u);
    EXPECT_EQ(min_rank<double>(v, 2.0), 1u);
    EXPECT_EQ(min_rank<double>(v, 3.0), 3u);
    EXPECT_EQ(min_rank<double>(v, 100.0), 4u);
}

TEST(Multiplicity, CountsEqual) {
    const std::vector<double> v{1, 2, 2, 3};
    EXPECT_EQ(multiplicity<double>(v, 2.0), 2u);
    EXPECT_EQ(multiplicity<double>(v, 5.0), 0u);
}

TEST(RankError, ZeroInsideRankInterval) {
    // value 2 occupies ranks 1 and 2.
    const std::vector<double> v{1, 2, 2, 3};
    EXPECT_EQ(rank_error<double>(v, 2.0, 1), 0u);
    EXPECT_EQ(rank_error<double>(v, 2.0, 2), 0u);
}

TEST(RankError, DistanceOutsideInterval) {
    const std::vector<double> v{1, 2, 2, 3};
    EXPECT_EQ(rank_error<double>(v, 2.0, 0), 1u);
    EXPECT_EQ(rank_error<double>(v, 2.0, 3), 1u);
    EXPECT_EQ(rank_error<double>(v, 1.0, 3), 3u);
}

TEST(RankError, ValueNotPresentUsesInsertionPoint) {
    const std::vector<double> v{1, 3};
    EXPECT_EQ(rank_error<double>(v, 2.0, 1), 0u);  // insertion point 1
    EXPECT_EQ(rank_error<double>(v, 2.0, 0), 1u);
}

TEST(RelativeRankError, NormalizedByN) {
    const std::vector<double> v{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(relative_rank_error<double>(v, 1.0, 2), 0.5);
}

TEST(RelativeRankError, EmptyThrows) {
    const std::vector<double> v;
    EXPECT_THROW((void)relative_rank_error<double>(v, 1.0, 0), std::invalid_argument);
}

TEST(SamplePercentileStddev, MostellerFormula) {
    // sd = sqrt(p(1-p)/s)
    EXPECT_DOUBLE_EQ(sample_percentile_stddev(0.5, 100), 0.05);
    EXPECT_NEAR(sample_percentile_stddev(0.1, 1000), std::sqrt(0.09 / 1000.0), 1e-12);
}

TEST(SamplePercentileStddev, EdgesAreZero) {
    EXPECT_DOUBLE_EQ(sample_percentile_stddev(0.0, 10), 0.0);
    EXPECT_DOUBLE_EQ(sample_percentile_stddev(1.0, 10), 0.0);
}

TEST(SamplePercentileStddev, InvalidArguments) {
    EXPECT_THROW((void)sample_percentile_stddev(-0.1, 10), std::invalid_argument);
    EXPECT_THROW((void)sample_percentile_stddev(1.1, 10), std::invalid_argument);
    EXPECT_THROW((void)sample_percentile_stddev(0.5, 0), std::invalid_argument);
}

TEST(SamplePercentileStddev, DecreasesWithSampleSize) {
    EXPECT_GT(sample_percentile_stddev(0.3, 100), sample_percentile_stddev(0.3, 1000));
}

}  // namespace
