// Sharded multi-device selection tests (core/shard_select.hpp,
// docs/sharding.md): the shard-count planner, exact out-of-core selection
// against the CPU reference on inputs 8x one device's modeled memory, the
// deterministic splitter skew bound (measured max bucket <= guarantee),
// the per-shard auxiliary-memory invariant, approximate selection's exact
// rank-error bound, sharded top-k, the streaming quantile sketch, NaN
// policies, determinism, and the cross-device StreamSan broken scenarios:
// consuming a transfer's landing buffer without its ready edge and
// overwriting the staging buffer mid-send are each a reportable hazard of
// the exact expected kind, and the edge-correct pattern reports nothing.

#include "core/shard_select.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/float_order.hpp"
#include "core/planner.hpp"
#include "data/rng.hpp"
#include "simt/arch.hpp"
#include "simt/streamsan.hpp"
#include "simt/topology.hpp"

namespace {

using namespace gpusel;
using core::ShardSelectConfig;
using simt::HazardKind;
using simt::StreamSanError;
using simt::StreamSanMode;

/// Group with a tiny modeled per-device memory so out-of-core inputs stay
/// cheap: 64 KiB capacity -> 16 KiB staging budget -> 4096 floats/shard.
constexpr std::size_t kTinyCapacity = 64 * 1024;

simt::TopologySpec tiny_spec(int devices, std::size_t capacity = kTinyCapacity) {
    simt::TopologySpec spec;
    spec.num_devices = devices;
    spec.arch = simt::arch_v100();
    spec.mem_capacity_bytes = capacity;
    return spec;
}

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
    data::Xoshiro256 rng(seed);
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(rng.uniform() * 2000.0 - 1000.0);
    return v;
}

/// CPU reference: the element of 0-based `rank` under the library's total
/// order (NaNs above +inf).
float reference_select(std::vector<float> v, std::size_t rank) {
    auto nth = v.begin() + static_cast<std::ptrdiff_t>(rank);
    std::nth_element(v.begin(), nth, v.end(),
                     [](float a, float b) { return core::total_less(a, b); });
    return *nth;
}

/// 0-based rank interval [lo, hi] the value occupies in the sorted input.
std::pair<std::size_t, std::size_t> reference_rank_range(std::vector<float> v, float value) {
    std::sort(v.begin(), v.end(), [](float a, float b) { return core::total_less(a, b); });
    const auto lo = std::lower_bound(v.begin(), v.end(), value,
                                     [](float a, float b) { return core::total_less(a, b); });
    const auto hi = std::upper_bound(v.begin(), v.end(), value,
                                     [](float a, float b) { return core::total_less(a, b); });
    EXPECT_NE(lo, hi) << "value " << value << " not present in the input";
    return {static_cast<std::size_t>(lo - v.begin()),
            static_cast<std::size_t>(hi - v.begin()) - 1};
}

// ---- shard-count planning ---------------------------------------------------

TEST(ShardPlanTest, FitsOneDevice) {
    const auto p = core::plan_shard_count(1000, 4, 1 << 20, 4);
    EXPECT_EQ(p.shards, 1u);
    EXPECT_STREQ(p.reason, "fits one device");
}

TEST(ShardPlanTest, OversizedInputChunksAgainstStagingBudget) {
    // 64 KiB capacity -> 16 KiB staging -> 4096 floats per shard.
    const auto p = core::plan_shard_count(100000, 4, kTinyCapacity, 2);
    EXPECT_EQ(p.shards, (100000 + 4095) / 4096u);
    EXPECT_LE(p.shard_elems, 4096u);
    EXPECT_STREQ(p.reason, "exceeds per-device staging budget");
}

TEST(ShardPlanTest, SmallOversubscriptionSpreadsOverAllDevices) {
    // Two shards' worth of data on a 4-device group spreads to 4 shards.
    const auto p = core::plan_shard_count(8000, 4, kTinyCapacity, 4);
    EXPECT_EQ(p.shards, 4u);
    EXPECT_STREQ(p.reason, "spread over all devices");
}

TEST(ShardPlanTest, NeverCutsBelowOneElementPerShard) {
    const auto p = core::plan_shard_count(3, 4, kTinyCapacity, 8, /*max_shard_elems=*/1);
    EXPECT_EQ(p.shards, 3u);
    EXPECT_EQ(p.shard_elems, 1u);
}

TEST(ShardPlanTest, ExplicitOverrideWins) {
    const auto p = core::plan_shard_count(10000, 4, 1ull << 40, 2, /*max_shard_elems=*/1000);
    EXPECT_EQ(p.shards, 10u);
    EXPECT_EQ(p.shard_elems, 1000u);
}

// ---- exact sharded selection ------------------------------------------------

TEST(ShardedSelect, MatchesCpuReferenceAt8xDeviceMemory) {
    // 8x the modeled 64 KiB capacity: 131072 floats (+ a ragged tail).
    const std::size_t n = 8 * kTinyCapacity / sizeof(float) + 37;
    const auto input = random_floats(n, 101);
    simt::DeviceGroup group(tiny_spec(2));
    ShardSelectConfig cfg;
    for (const std::size_t rank :
         {std::size_t{0}, n / 3, n / 2, n - 2, n - 1}) {
        auto res = core::try_sharded_select<float>(group, input, rank, cfg);
        ASSERT_TRUE(res.ok()) << res.status().message;
        EXPECT_EQ(res.value().value, reference_select(input, rank)) << "rank " << rank;
    }
}

TEST(ShardedSelect, AccountingInvariantsHold) {
    const std::size_t n = 8 * kTinyCapacity / sizeof(float);
    const auto input = random_floats(n, 102);
    simt::DeviceGroup group(tiny_spec(2));
    ShardSelectConfig cfg;
    auto res = core::try_sharded_select<float>(group, input, n / 2, cfg);
    ASSERT_TRUE(res.ok()) << res.status().message;
    const auto& a = res.value().acct;
    // The input was genuinely out of core and used the whole group.
    EXPECT_GE(a.shards, 8u);
    EXPECT_EQ(a.devices_used, 2);
    EXPECT_LE(a.max_shard_elems, 4096u);
    // Out-of-core invariant: per-device auxiliary memory stays within one
    // device's modeled capacity even though n is 8x beyond it.
    EXPECT_LE(a.max_shard_aux_bytes, group.mem_capacity_bytes());
    // The deterministic splitter guarantee: the measured largest
    // non-equality bucket respects the regular-sampling bound.
    EXPECT_GT(a.skew_bound, 0u);
    EXPECT_LE(a.max_bucket, a.skew_bound);
    // Cross-device work really moved bytes over the modeled links and
    // consumed simulated time and launches.
    EXPECT_GT(a.link_bytes, 0u);
    EXPECT_EQ(a.link_bytes, group.total_link_bytes());
    EXPECT_GT(a.sim_ns, 0.0);
    EXPECT_GT(a.launches, 0u);
    EXPECT_EQ(a.nan_count, 0u);
}

TEST(ShardedSelect, SingleShardPassthrough) {
    const auto input = random_floats(2000, 103);
    simt::DeviceGroup group(tiny_spec(2));
    ShardSelectConfig cfg;
    auto res = core::try_sharded_select<float>(group, input, 1234, cfg);
    ASSERT_TRUE(res.ok()) << res.status().message;
    EXPECT_EQ(res.value().value, reference_select(input, 1234));
    EXPECT_EQ(res.value().acct.shards, 1u);
    // No merge ran: the skew machinery reports zeros per the contract.
    EXPECT_EQ(res.value().acct.skew_bound, 0u);
    EXPECT_EQ(res.value().acct.link_bytes, 0u);
}

TEST(ShardedSelect, DuplicateHeavyInputStaysExact) {
    const std::size_t n = 40000;
    data::Xoshiro256 rng(104);
    std::vector<float> input(n);
    for (auto& x : input) x = static_cast<float>(static_cast<int>(rng.uniform() * 8.0));
    simt::DeviceGroup group(tiny_spec(2));
    ShardSelectConfig cfg;
    for (const std::size_t rank : {n / 4, n / 2, 3 * n / 4}) {
        auto res = core::try_sharded_select<float>(group, input, rank, cfg);
        ASSERT_TRUE(res.ok()) << res.status().message;
        EXPECT_EQ(res.value().value, reference_select(input, rank)) << "rank " << rank;
    }
}

TEST(ShardedSelect, DeterministicAcrossRuns) {
    const std::size_t n = 50000;
    const auto input = random_floats(n, 105);
    ShardSelectConfig cfg;
    std::optional<core::ShardedSelectResult<float>> first;
    for (int run = 0; run < 2; ++run) {
        simt::DeviceGroup group(tiny_spec(3));
        auto res = core::try_sharded_select<float>(group, input, n / 2, cfg);
        ASSERT_TRUE(res.ok()) << res.status().message;
        if (!first) {
            first = res.value();
            continue;
        }
        EXPECT_EQ(res.value().value, first->value);
        EXPECT_EQ(res.value().acct.skew_bound, first->acct.skew_bound);
        EXPECT_EQ(res.value().acct.merge_candidates, first->acct.merge_candidates);
        EXPECT_EQ(res.value().acct.link_bytes, first->acct.link_bytes);
        EXPECT_EQ(res.value().acct.launches, first->acct.launches);
    }
}

TEST(ShardedSelect, NanPoliciesMatchSingleDeviceContract) {
    auto input = random_floats(30000, 106);
    for (std::size_t i = 0; i < input.size(); i += 97) input[i] = core::quiet_nan<float>();
    const std::size_t nan = (input.size() + 96) / 97;
    simt::DeviceGroup group(tiny_spec(2));
    ShardSelectConfig cfg;

    cfg.select.nan_policy = core::NanPolicy::reject;
    auto rej = core::try_sharded_select<float>(group, input, 10, cfg);
    ASSERT_FALSE(rej.ok());
    EXPECT_EQ(rej.status().code, core::SelectError::nan_keys_rejected);

    cfg.select.nan_policy = core::NanPolicy::propagate_largest;
    auto mid = core::try_sharded_select<float>(group, input, input.size() / 2, cfg);
    ASSERT_TRUE(mid.ok()) << mid.status().message;
    EXPECT_EQ(mid.value().value, reference_select(input, input.size() / 2));
    EXPECT_EQ(mid.value().acct.nan_count, nan);

    // A rank inside the NaN tail answers NaN (NaNs sort above +inf).
    auto tail = core::try_sharded_select<float>(group, input, input.size() - 1, cfg);
    ASSERT_TRUE(tail.ok()) << tail.status().message;
    EXPECT_TRUE(std::isnan(tail.value().value));
}

TEST(ShardedSelect, TypedErrors) {
    simt::DeviceGroup group(tiny_spec(2));
    ShardSelectConfig cfg;
    const std::vector<float> empty;
    auto e1 = core::try_sharded_select<float>(group, empty, 0, cfg);
    EXPECT_EQ(e1.status().code, core::SelectError::empty_input);

    const auto input = random_floats(100, 107);
    auto e2 = core::try_sharded_select<float>(group, input, 100, cfg);
    EXPECT_EQ(e2.status().code, core::SelectError::rank_out_of_range);

    ShardSelectConfig bad = cfg;
    bad.splitter_buckets = 3;  // not a power of two
    auto e3 = core::try_sharded_select<float>(group, input, 10, bad);
    EXPECT_EQ(e3.status().code, core::SelectError::invalid_argument);

    ShardSelectConfig fan = cfg;
    fan.merge_fanin = 1;
    auto e4 = core::try_sharded_select<float>(group, input, 10, fan);
    EXPECT_EQ(e4.status().code, core::SelectError::invalid_argument);
}

TEST(ShardedSelect, DoubleKeysAndDeepFanin) {
    const std::size_t n = 60000;
    data::Xoshiro256 rng(108);
    std::vector<double> input(n);
    for (auto& x : input) x = rng.uniform() * 1e6 - 5e5;
    simt::DeviceGroup group(tiny_spec(4));
    ShardSelectConfig cfg;
    cfg.merge_fanin = 2;  // force multiple hierarchical merge rounds
    auto res = core::try_sharded_select<double>(group, input, n / 2, cfg);
    ASSERT_TRUE(res.ok()) << res.status().message;
    std::vector<double> ref = input;
    auto nth = ref.begin() + static_cast<std::ptrdiff_t>(n / 2);
    std::nth_element(ref.begin(), nth, ref.end());
    EXPECT_EQ(res.value().value, *nth);
    EXPECT_EQ(res.value().acct.devices_used, 4);
}

// ---- approximate sharded selection ------------------------------------------

TEST(ShardedApprox, ErrorWithinReportedBound) {
    const std::size_t n = 70000;
    const auto input = random_floats(n, 109);
    simt::DeviceGroup group(tiny_spec(2));
    ShardSelectConfig cfg;
    for (const std::size_t rank : {n / 10, n / 2, 9 * n / 10}) {
        auto res = core::try_sharded_approx_select<float>(group, input, rank, cfg);
        ASSERT_TRUE(res.ok()) << res.status().message;
        const auto [lo, hi] = reference_rank_range(input, res.value().value);
        const std::size_t err = rank < lo ? lo - rank : (rank > hi ? rank - hi : 0);
        EXPECT_LE(err, res.value().rank_error_bound) << "rank " << rank;
        // The bound itself is splitter-granularity: never beyond one
        // bucket (+1 for the duplicate-splitter edge).
        EXPECT_LE(res.value().rank_error_bound, res.value().acct.skew_bound + 1);
    }
}

TEST(ShardedApprox, SingleShardStillAnswersWithBound) {
    const auto input = random_floats(3000, 110);
    simt::DeviceGroup group(tiny_spec(2));
    ShardSelectConfig cfg;
    auto res = core::try_sharded_approx_select<float>(group, input, 1500, cfg);
    ASSERT_TRUE(res.ok()) << res.status().message;
    const auto [lo, hi] = reference_rank_range(input, res.value().value);
    const std::size_t err = 1500 < lo ? lo - 1500 : (1500 > hi ? 1500 - hi : 0);
    EXPECT_LE(err, res.value().rank_error_bound);
    EXPECT_GT(res.value().acct.merge_candidates, 0u);
}

// ---- sharded top-k ----------------------------------------------------------

TEST(ShardedTopK, MatchesReferenceAcrossShards) {
    const std::size_t n = 90000;
    const std::size_t k = 257;
    const auto input = random_floats(n, 111);
    simt::DeviceGroup group(tiny_spec(2));
    ShardSelectConfig cfg;
    auto res = core::try_sharded_topk<float>(group, input, k, cfg);
    ASSERT_TRUE(res.ok()) << res.status().message;
    ASSERT_EQ(res.value().elements.size(), k);
    std::vector<float> ref = input;
    std::sort(ref.begin(), ref.end(), std::greater<>());
    EXPECT_EQ(res.value().threshold, ref[k - 1]);
    std::vector<float> got = res.value().elements;
    std::sort(got.begin(), got.end(), std::greater<>());
    for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(got[i], ref[i]) << "element " << i;
    EXPECT_GE(res.value().acct.shards, 8u);
    EXPECT_GT(res.value().acct.link_bytes, 0u);
}

TEST(ShardedTopK, NanTailAndGuards) {
    auto input = random_floats(50000, 112);
    input[7] = core::quiet_nan<float>();
    input[19] = core::quiet_nan<float>();
    simt::DeviceGroup group(tiny_spec(2));
    ShardSelectConfig cfg;
    cfg.select.nan_policy = core::NanPolicy::propagate_largest;
    // k within the NaN count: the whole top-k set is NaN.
    auto nan_only = core::try_sharded_topk<float>(group, input, 2, cfg);
    ASSERT_TRUE(nan_only.ok()) << nan_only.status().message;
    for (const float x : nan_only.value().elements) EXPECT_TRUE(std::isnan(x));

    // Mixed: NaNs ride along as the largest keys.
    auto mixed = core::try_sharded_topk<float>(group, input, 10, cfg);
    ASSERT_TRUE(mixed.ok()) << mixed.status().message;
    ASSERT_EQ(mixed.value().elements.size(), 10u);
    const std::size_t nans = static_cast<std::size_t>(
        std::count_if(mixed.value().elements.begin(), mixed.value().elements.end(),
                      [](float x) { return std::isnan(x); }));
    EXPECT_EQ(nans, 2u);

    // k == 0 and k > n are typed errors.
    EXPECT_EQ(core::try_sharded_topk<float>(group, input, 0, cfg).status().code,
              core::SelectError::rank_out_of_range);
    EXPECT_EQ(core::try_sharded_topk<float>(group, input, input.size() + 1, cfg).status().code,
              core::SelectError::rank_out_of_range);

    // A k beyond the per-shard staging budget cannot gather on the root.
    auto big = core::try_sharded_topk<float>(group, input, 20000, cfg);
    EXPECT_EQ(big.status().code, core::SelectError::invalid_argument);
}

// ---- streaming quantile sketch ----------------------------------------------

TEST(StreamingQuantileTest, BoundsHoldOverChunkedStream) {
    const std::size_t n = 64000;
    const auto data = random_floats(n, 113);
    simt::Device dev(simt::arch_v100());
    core::ShardSelectConfig cfg;
    cfg.splitter_buckets = 64;
    core::StreamingQuantile<float> sketch(dev, cfg);
    const std::size_t chunk = 9000;  // ragged: the last chunk is short
    for (std::size_t off = 0; off < n; off += chunk) {
        const std::size_t len = std::min(chunk, n - off);
        ASSERT_TRUE(sketch.observe(std::span<const float>(data).subspan(off, len)).ok());
    }
    EXPECT_EQ(sketch.observed(), n);
    EXPECT_GT(sketch.launches(), 0u);
    for (const double q : {0.01, 0.25, 0.5, 0.9, 0.999}) {
        auto est = sketch.quantile(q);
        ASSERT_TRUE(est.ok()) << est.status().message;
        const auto& e = est.value();
        const auto [lo, hi] = reference_rank_range(data, e.value);
        const std::size_t err = e.rank < lo ? lo - e.rank : (e.rank > hi ? e.rank - hi : 0);
        EXPECT_LE(err, e.rank_error_bound) << "q=" << q;
    }
}

TEST(StreamingQuantileTest, NanSkippingAndErrors) {
    simt::Device dev(simt::arch_v100());
    core::StreamingQuantile<float> sketch(dev);
    EXPECT_EQ(sketch.quantile(0.5).status().code, core::SelectError::empty_input);
    std::vector<float> chunk = {1.0f, core::quiet_nan<float>(), 3.0f, 2.0f};
    ASSERT_TRUE(sketch.observe(chunk).ok());
    EXPECT_EQ(sketch.observed(), 4u);
    EXPECT_EQ(sketch.nan_count(), 1u);
    EXPECT_EQ(sketch.quantile(1.5).status().code, core::SelectError::invalid_argument);
    auto est = sketch.quantile(0.5);
    ASSERT_TRUE(est.ok());
    EXPECT_EQ(est.value().n, 3u);
}

// ---- cross-device StreamSan ordering ----------------------------------------

/// One-block kernel reading every element of `buf` on `stream`.
void launch_read(simt::Device& dev, std::span<const float> buf, int stream) {
    dev.launch("consumer_read", {.grid_dim = 1, .block_dim = 32, .stream = stream},
               [buf](simt::BlockCtx& blk) {
                   blk.warp_tiles(buf.size(), [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       float regs[simt::kWarpSize];
                       w.load(buf, base, regs);
                   });
               });
}

/// One-block kernel overwriting every element of `buf` on `stream`.
void launch_write(simt::Device& dev, std::span<float> buf, int stream) {
    dev.launch("producer_write", {.grid_dim = 1, .block_dim = 32, .stream = stream},
               [buf](simt::BlockCtx& blk) {
                   blk.warp_tiles(buf.size(), [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       float regs[simt::kWarpSize] = {};
                       w.store(buf, base, regs);
                   });
               });
}

/// Runs `f` and returns the HazardKind of the StreamSanError it throws, or
/// nullopt if it completes cleanly.
template <typename F>
std::optional<HazardKind> hazard_kind_of(F&& f) {
    try {
        f();
    } catch (const StreamSanError& e) {
        return e.hazard().kind;
    }
    return std::nullopt;
}

TEST(ShardStreamSan, ReadingLandingBufferWithoutReadyEdgeIsRace) {
    simt::DeviceGroup group(tiny_spec(2));
    group.device(0).set_stream_sanitizer(StreamSanMode::strict);
    group.device(1).set_stream_sanitizer(StreamSanMode::strict);
    auto src = group.device(0).pooled<float>(256);
    auto dst = group.device(1).pooled<float>(256);
    for (std::size_t i = 0; i < 256; ++i) src[i] = static_cast<float>(i);
    (void)group.transfer<float>(0, std::span<const float>(src.span()), 0, 1, dst.span(), 0,
                                256, 0);
    // BROKEN: the merge consumes the peer's landing buffer without adopting
    // the transfer's ready event -- the link_recv write and this read are
    // unordered, exactly the hazard the sharded merges' wait_event prevents.
    EXPECT_EQ(hazard_kind_of([&] { launch_read(group.device(1), dst.span(), 0); }),
              HazardKind::read_write_race);
    group.synchronize_all();
}

TEST(ShardStreamSan, OverwritingSourceDuringSendIsRace) {
    simt::DeviceGroup group(tiny_spec(2));
    group.device(0).set_stream_sanitizer(StreamSanMode::strict);
    group.device(1).set_stream_sanitizer(StreamSanMode::strict);
    auto src = group.device(0).pooled<float>(256);
    auto dst = group.device(1).pooled<float>(256);
    for (std::size_t i = 0; i < 256; ++i) src[i] = static_cast<float>(i);
    (void)group.transfer<float>(0, std::span<const float>(src.span()), 0, 1, dst.span(), 0,
                                256, 0);
    // BROKEN: the producer reuses its staging buffer without waiting for
    // src_done -- the link_send read pass and this write are unordered.
    EXPECT_EQ(hazard_kind_of([&] { launch_write(group.device(0), src.span(), 0); }),
              HazardKind::read_write_race);
    group.synchronize_all();
}

TEST(ShardStreamSan, TransferEdgesMakeConsumptionClean) {
    simt::DeviceGroup group(tiny_spec(2));
    group.device(0).set_stream_sanitizer(StreamSanMode::strict);
    group.device(1).set_stream_sanitizer(StreamSanMode::strict);
    auto src = group.device(0).pooled<float>(256);
    auto dst = group.device(1).pooled<float>(256);
    for (std::size_t i = 0; i < 256; ++i) src[i] = static_cast<float>(i);
    const auto rec =
        group.transfer<float>(0, std::span<const float>(src.span()), 0, 1, dst.span(), 0, 256, 0);
    // CORRECT: adopt both edges, then consume and overwrite freely.
    group.device(1).wait_event(0, rec.ready_ns);
    launch_read(group.device(1), dst.span(), 0);
    group.device(0).wait_event(0, rec.src_done_ns);
    launch_write(group.device(0), src.span(), 0);
    group.synchronize_all();
    EXPECT_EQ(group.device(0).stream_sanitizer()->total_hazards(), 0u);
    EXPECT_EQ(group.device(1).stream_sanitizer()->total_hazards(), 0u);
    EXPECT_EQ(dst[255], 255.0f);
}

TEST(ShardStreamSan, ShardedSelectIsHazardFreeUnderStrictMode) {
    simt::DeviceGroup group(tiny_spec(2));
    group.device(0).set_stream_sanitizer(StreamSanMode::strict);
    group.device(1).set_stream_sanitizer(StreamSanMode::strict);
    const std::size_t n = 40000;
    const auto input = random_floats(n, 114);
    ShardSelectConfig cfg;
    auto res = core::try_sharded_select<float>(group, input, n / 2, cfg);
    ASSERT_TRUE(res.ok()) << res.status().message;
    EXPECT_EQ(res.value().value, reference_select(input, n / 2));
    EXPECT_EQ(group.device(0).stream_sanitizer()->total_hazards(), 0u);
    EXPECT_EQ(group.device(1).stream_sanitizer()->total_hazards(), 0u);
}

}  // namespace
