// Randomized cross-validation ("fuzz") tests: random datasets, random
// configurations, random ranks -- every algorithm must agree with
// std::nth_element.  These catch interaction bugs the directed tests miss
// (odd sizes, extreme duplicates, tiny/huge buckets, unusual block sizes).

#include <gtest/gtest.h>

#include "baselines/bucketselect.hpp"
#include "baselines/quickselect.hpp"
#include "baselines/radixselect.hpp"
#include "core/sample_select.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "data/rng.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;

struct FuzzCase {
    std::vector<float> data;
    std::size_t rank;
    core::SampleSelectConfig cfg;
    std::string description;
};

FuzzCase make_case(std::uint64_t seed) {
    data::Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    FuzzCase c;
    // odd sizes on purpose (not powers of two)
    const std::size_t n = 2 + rng.bounded(40000);
    const auto& dists = data::all_distributions();
    const auto dist = dists[rng.bounded(dists.size())];
    const std::size_t distinct =
        rng.bounded(4) == 0 ? 1 + rng.bounded(64) : 0;  // sometimes few distinct
    c.data = data::generate<float>(
        {.n = n, .dist = dist, .distinct_values = distinct, .seed = seed});
    c.rank = rng.bounded(n);

    const int bucket_choices[] = {4, 16, 64, 256};
    c.cfg.num_buckets = bucket_choices[rng.bounded(4)];
    c.cfg.sample_size = static_cast<int>(
        std::max<std::uint64_t>(static_cast<std::uint64_t>(c.cfg.num_buckets),
                                64 + rng.bounded(2048)));
    c.cfg.block_dim = static_cast<int>(32 * (1 + rng.bounded(8)));
    c.cfg.unroll = static_cast<int>(1 + rng.bounded(8));
    c.cfg.atomic_space =
        rng.bounded(2) == 0 ? simt::AtomicSpace::shared : simt::AtomicSpace::global;
    c.cfg.warp_aggregation = rng.bounded(2) == 0;
    c.cfg.base_case_size = 64 + rng.bounded(1024);
    c.cfg.seed = seed;
    c.description = "seed=" + std::to_string(seed) + " n=" + std::to_string(n) + " dist=" +
                    to_string(dist) + " b=" + std::to_string(c.cfg.num_buckets);
    return c;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, SampleSelectAgreesWithReference) {
    const auto c = make_case(GetParam());
    simt::Device dev(simt::arch_v100());
    const auto r = core::sample_select<float>(dev, c.data, c.rank, c.cfg);
    EXPECT_EQ(stats::rank_error<float>(c.data, r.value, c.rank), 0u) << c.description;
}

TEST_P(Fuzz, QuickSelectAgreesWithReference) {
    const auto c = make_case(GetParam() + 1000);
    core::QuickSelectConfig qcfg;
    qcfg.atomic_space = c.cfg.atomic_space;
    qcfg.warp_aggregation = c.cfg.warp_aggregation;
    qcfg.block_dim = c.cfg.block_dim;
    qcfg.base_case_size = c.cfg.base_case_size;
    qcfg.seed = c.cfg.seed;
    simt::Device dev(simt::arch_v100());
    const auto r = baselines::quick_select<float>(dev, c.data, c.rank, qcfg);
    EXPECT_EQ(stats::rank_error<float>(c.data, r.value, c.rank), 0u) << c.description;
}

TEST_P(Fuzz, BucketAndRadixAgreeWithReference) {
    const auto c = make_case(GetParam() + 2000);
    simt::Device d1(simt::arch_v100());
    const auto rb = baselines::bucket_select<float>(d1, c.data, c.rank, {});
    EXPECT_EQ(stats::rank_error<float>(c.data, rb.value, c.rank), 0u) << c.description;
    simt::Device d2(simt::arch_v100());
    const auto rr = baselines::radix_select<float>(d2, c.data, c.rank, {});
    EXPECT_EQ(stats::rank_error<float>(c.data, rr.value, c.rank), 0u) << c.description;
}

TEST_P(Fuzz, TopKContainsExactlyTheLargest) {
    const auto c = make_case(GetParam() + 3000);
    const std::size_t k = 1 + c.rank % std::min<std::size_t>(c.data.size(), 500);
    simt::Device dev(simt::arch_v100());
    const auto r = core::topk_largest<float>(dev, c.data, k, c.cfg);
    ASSERT_EQ(r.elements.size(), k) << c.description;
    std::vector<float> expect(c.data);
    std::sort(expect.begin(), expect.end(), std::greater<>());
    expect.resize(k);
    auto got = r.elements;
    std::sort(got.begin(), got.end(), std::greater<>());
    EXPECT_EQ(got, expect) << c.description;
}

TEST_P(Fuzz, K20PresetAgreesToo) {
    const auto c = make_case(GetParam() + 4000);
    simt::Device dev(simt::preset("K20Xm"));
    const auto r = core::sample_select<float>(dev, c.data, c.rank, c.cfg);
    EXPECT_EQ(stats::rank_error<float>(c.data, r.value, c.rank), 0u) << c.description;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
