// Unit tests for the splitter search tree (core/searchtree.hpp), including
// the duplicate-splitter equality-bucket semantics of Sec. IV-C.

#include "core/searchtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/rng.hpp"

namespace {

using gpusel::core::SearchTree;

TEST(SearchTree, RejectsWrongSplitterCount) {
    EXPECT_THROW((void)SearchTree<float>::build({1, 2}), std::invalid_argument);  // 2 != 2^h-1
    EXPECT_NO_THROW((void)SearchTree<float>::build({1, 2, 3}));
    EXPECT_NO_THROW((void)SearchTree<float>::build({1}));
}

TEST(SearchTree, RejectsUnsortedSplitters) {
    EXPECT_THROW((void)SearchTree<float>::build({3, 2, 1}), std::invalid_argument);
}

TEST(SearchTree, BasicBucketBoundaries) {
    // splitters 10,20,30 -> buckets (-inf,10) [10,20) [20,30) [30,inf)
    const auto t = SearchTree<double>::build({10, 20, 30});
    EXPECT_EQ(t.num_buckets, 4);
    EXPECT_EQ(t.height, 2);
    EXPECT_EQ(t.find_bucket(5), 0);
    EXPECT_EQ(t.find_bucket(10), 1);  // element == splitter goes right
    EXPECT_EQ(t.find_bucket(15), 1);
    EXPECT_EQ(t.find_bucket(20), 2);
    EXPECT_EQ(t.find_bucket(29.999), 2);
    EXPECT_EQ(t.find_bucket(30), 3);
    EXPECT_EQ(t.find_bucket(1e9), 3);
}

TEST(SearchTree, MatchesLinearScanOnRandomSplitters) {
    gpusel::data::Xoshiro256 rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> sp(255);
        for (auto& s : sp) s = rng.uniform() * 1000.0;
        std::sort(sp.begin(), sp.end());
        const auto t = SearchTree<double>::build(sp);
        for (int q = 0; q < 200; ++q) {
            const double x = rng.uniform() * 1200.0 - 100.0;
            // reference: bucket = #splitters <= x (all distinct here)
            const auto ref = static_cast<std::int32_t>(
                std::upper_bound(sp.begin(), sp.end(), x) - sp.begin());
            ASSERT_EQ(t.find_bucket(x), ref) << "x=" << x;
        }
    }
}

TEST(SearchTree, HeapLayoutInOrderIsSorted) {
    const auto t = SearchTree<float>::build({1, 2, 3, 4, 5, 6, 7});
    // root must be the median
    EXPECT_EQ(t.nodes[0], 4.0f);
    EXPECT_EQ(t.nodes[1], 2.0f);
    EXPECT_EQ(t.nodes[2], 6.0f);
}

TEST(SearchTree, NoEqualityBucketsWithoutDuplicates) {
    const auto t = SearchTree<float>::build({1, 2, 3});
    EXPECT_TRUE(std::all_of(t.equality.begin(), t.equality.end(),
                            [](std::uint8_t e) { return e == 0; }));
}

TEST(SearchTree, DuplicateSplittersFormEqualityBucket) {
    // splitters 5,5,9: duplicate run at indices 0..1, value 5.
    const auto t = SearchTree<double>::build({5, 5, 9});
    // bucket 1 (between splitter 0 and 1) collapses to exactly {5}
    EXPECT_EQ(t.equality[0], 0);
    EXPECT_EQ(t.equality[1], 1);
    EXPECT_EQ(t.equality[2], 0);
    EXPECT_EQ(t.equality[3], 0);
    EXPECT_EQ(t.find_bucket(4.0), 0);
    EXPECT_EQ(t.find_bucket(5.0), 1);   // equality bucket
    EXPECT_EQ(t.find_bucket(6.0), 2);
    EXPECT_EQ(t.find_bucket(9.0), 3);
    // the equality bucket's value is splitters[bucket-1]
    EXPECT_EQ(t.splitters[0], 5.0);
}

TEST(SearchTree, AllSplittersEqual) {
    const auto t = SearchTree<double>::build({7, 7, 7, 7, 7, 7, 7});
    EXPECT_EQ(t.find_bucket(6.0), 0);
    const auto eq_bucket = t.find_bucket(7.0);
    EXPECT_EQ(t.equality[static_cast<std::size_t>(eq_bucket)], 1);
    EXPECT_EQ(t.find_bucket(8.0), 7);  // last bucket
    // everything below the run is bucket 0, everything above is bucket b-1
    EXPECT_EQ(eq_bucket, 6);  // bucket left of the last duplicate splitter
}

TEST(SearchTree, MultipleDuplicateRuns) {
    const auto t = SearchTree<double>::build({2, 2, 5, 5, 5, 8, 9});
    const auto b2 = t.find_bucket(2.0);
    const auto b5 = t.find_bucket(5.0);
    EXPECT_EQ(t.equality[static_cast<std::size_t>(b2)], 1);
    EXPECT_EQ(t.equality[static_cast<std::size_t>(b5)], 1);
    EXPECT_NE(b2, b5);
    // elements strictly between the runs land in non-equality buckets
    const auto b3 = t.find_bucket(3.0);
    EXPECT_EQ(t.equality[static_cast<std::size_t>(b3)], 0);
    EXPECT_GT(b3, b2);
    EXPECT_LT(b3, b5);
    EXPECT_EQ(t.find_bucket(8.5), t.find_bucket(8.0));
}

TEST(SearchTree, EqualityBucketCapturesAllDuplicatesInData) {
    // Simulates the d=1 dataset: every sampled splitter equals v.
    const double v = 3.25;
    std::vector<double> sp(63, v);
    const auto t = SearchTree<double>::build(sp);
    const auto bucket = t.find_bucket(v);
    EXPECT_EQ(t.equality[static_cast<std::size_t>(bucket)], 1);
    EXPECT_EQ(t.splitters[static_cast<std::size_t>(bucket) - 1], v);
}

TEST(SearchTree, DeviceBytesAccountsNodesAndFlags) {
    const auto t = SearchTree<float>::build({1, 2, 3, 4, 5, 6, 7});
    EXPECT_EQ(t.device_bytes(), 7 * sizeof(float) + 7);
}

}  // namespace
