// Tests for the pipeline-grade radix selection backend
// (core/radix_backend.hpp): correctness of the fused-histogram digit
// descent against std::nth_element across distributions and key types,
// the all-equal equality exit, fused top-k accumulation, and the
// key/payload instantiation's total order.

#include "core/radix_backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/key_payload.hpp"
#include "core/pipeline.hpp"
#include "data/distributions.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;
using core::ArgPair;
using core::DataHolder;
using core::PipelineContext;
using core::SampleSelectConfig;

template <typename T>
DataHolder<T> stage(simt::Device& dev, const SampleSelectConfig& cfg,
                    const std::vector<T>& input) {
    PipelineContext ctx(dev, cfg);
    return DataHolder<T>::stage(ctx, input);
}

template <typename T>
void expect_radix_selects(const std::vector<T>& data, std::size_t rank,
                          const SampleSelectConfig& cfg = {}) {
    simt::Device dev(simt::arch_v100());
    auto res = core::try_radix_select_staged<T>(dev, stage(dev, cfg, data), rank, cfg);
    ASSERT_TRUE(res.ok()) << res.status().message;
    EXPECT_EQ(stats::rank_error<T>(data, res.value().value, rank), 0u)
        << "rank " << rank << " got " << res.value().value;
}

TEST(RadixBackend, MatchesReferenceAcrossDistributions) {
    const std::size_t n = 8192;
    const data::Distribution dists[] = {
        data::Distribution::uniform_real,      data::Distribution::uniform_distinct,
        data::Distribution::sorted_ascending,  data::Distribution::sorted_descending,
        data::Distribution::zipf,              data::Distribution::adversarial_cluster,
    };
    for (const auto dist : dists) {
        const auto data =
            data::generate<float>({.n = n, .dist = dist, .distinct_values = 128, .seed = 7});
        for (const std::size_t rank : {std::size_t{0}, n / 2, n - 1}) {
            expect_radix_selects<float>(data, rank);
        }
    }
}

TEST(RadixBackend, MatchesReferenceForDoubles) {
    const std::size_t n = 4096;
    const auto data =
        data::generate<double>({.n = n, .dist = data::Distribution::normal, .seed = 11});
    for (const std::size_t rank : {std::size_t{1}, n / 3, n - 2}) {
        expect_radix_selects<double>(data, rank);
    }
}

TEST(RadixBackend, HandlesNegativesAndSignedZero) {
    std::vector<float> data{-3.5f, 2.0f, -0.0f, 0.0f, -1e9f, 1e-9f, -2.0f, 7.0f};
    // Pad above the base case so the digit descent actually runs.
    for (std::size_t i = data.size(); i < 2048; ++i) {
        data.push_back(static_cast<float>(static_cast<int>(i % 64) - 32));
    }
    for (std::size_t rank = 0; rank < 8; ++rank) {
        expect_radix_selects<float>(data, rank * (data.size() / 8));
    }
}

TEST(RadixBackend, AllEqualTakesEqualityExitInOneFusedPass) {
    const std::vector<float> data(65536, 42.5f);
    SampleSelectConfig cfg;
    simt::Device dev(simt::arch_v100());
    auto res =
        core::try_radix_select_staged<float>(dev, stage(dev, cfg, data), data.size() / 2, cfg);
    ASSERT_TRUE(res.ok()) << res.status().message;
    EXPECT_EQ(res.value().value, 42.5f);
    EXPECT_TRUE(res.value().equality_exit);
    // One fused histogram pass consumes all four float digit levels.
    EXPECT_EQ(res.value().levels, 1u);
}

TEST(RadixBackend, TwoValueInputsResolveEveryRank) {
    const std::size_t n = 8192;
    std::vector<float> data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = (i * 2654435761u) % 3 == 0 ? 1.0f : 2.0f;
    for (const std::size_t rank : {std::size_t{0}, std::size_t{1}, n / 2, n - 2, n - 1}) {
        expect_radix_selects<float>(data, rank);
    }
}

TEST(RadixBackend, SmallInputsSortOutright) {
    const std::vector<float> data{5, 3, 9, 1, 7, 2, 8};
    SampleSelectConfig cfg;
    simt::Device dev(simt::arch_v100());
    auto res = core::try_radix_select_staged<float>(dev, stage(dev, cfg, data), 3, cfg);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.value().value, 5.0f);
    EXPECT_EQ(res.value().levels, 0u);
}

template <typename T>
void expect_radix_topk(const std::vector<T>& data, std::size_t k) {
    SampleSelectConfig cfg;
    simt::Device dev(simt::arch_v100());
    auto res = core::try_radix_topk_staged<T>(dev, stage(dev, cfg, data), k, cfg);
    ASSERT_TRUE(res.ok()) << res.status().message;
    ASSERT_EQ(res.value().elements.size(), k);

    std::vector<T> expect = data;
    std::sort(expect.begin(), expect.end());
    std::vector<T> got = res.value().elements;
    std::sort(got.begin(), got.end());
    for (std::size_t i = 0; i < k; ++i) {
        EXPECT_EQ(got[i], expect[expect.size() - k + i]) << "slot " << i << " of k=" << k;
    }
    EXPECT_EQ(res.value().threshold, expect[expect.size() - k]) << "threshold of k=" << k;
}

TEST(RadixBackend, TopKMatchesSortedReference) {
    const std::size_t n = 8192;
    const auto data =
        data::generate<float>({.n = n, .dist = data::Distribution::uniform_real, .seed = 23});
    for (const std::size_t k : {std::size_t{1}, std::size_t{37}, n / 2, n - 1, n}) {
        expect_radix_topk<float>(data, k);
    }
}

TEST(RadixBackend, TopKOnHeavyDuplicates) {
    const std::size_t n = 8192;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_distinct, .distinct_values = 16, .seed = 5});
    for (const std::size_t k : {std::size_t{1}, n / 4, n / 2}) {
        expect_radix_topk<float>(data, k);
    }
}

TEST(RadixBackend, TopKAllEqual) {
    const std::vector<float> data(4096, -7.25f);
    expect_radix_topk<float>(data, 100);
}

// ---- key/payload (argselect) instantiation --------------------------------

std::vector<ArgPair> make_pairs(std::size_t n, std::size_t distinct_keys) {
    std::vector<ArgPair> pairs(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto h = (i * 2654435761u) % distinct_keys;
        pairs[i] = {static_cast<float>(h) - static_cast<float>(distinct_keys / 2),
                    static_cast<std::uint32_t>(i)};
    }
    return pairs;
}

TEST(RadixBackend, ArgPairSelectFollowsKeyPayloadOrder) {
    const std::size_t n = 8192;
    auto pairs = make_pairs(n, 64);
    std::vector<ArgPair> sorted = pairs;
    std::sort(sorted.begin(), sorted.end());

    SampleSelectConfig cfg;
    for (const std::size_t rank : {std::size_t{0}, n / 2, n - 1}) {
        simt::Device dev(simt::arch_v100());
        auto res = core::try_radix_select_staged<ArgPair>(dev, stage(dev, cfg, pairs), rank, cfg);
        ASSERT_TRUE(res.ok()) << res.status().message;
        // Payloads are unique, so the total order is strict: the selected
        // pair must match the sorted reference exactly.
        EXPECT_EQ(res.value().value.key, sorted[rank].key);
        EXPECT_EQ(res.value().value.payload, sorted[rank].payload);
    }
}

TEST(RadixBackend, ArgPairTopKReturnsExactPairSet) {
    const std::size_t n = 4096;
    auto pairs = make_pairs(n, 16);
    std::vector<ArgPair> sorted = pairs;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t k = 257;

    SampleSelectConfig cfg;
    simt::Device dev(simt::arch_v100());
    auto res = core::try_radix_topk_staged<ArgPair>(dev, stage(dev, cfg, pairs), k, cfg);
    ASSERT_TRUE(res.ok()) << res.status().message;
    std::vector<ArgPair> got = res.value().elements;
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got.size(), k);
    for (std::size_t i = 0; i < k; ++i) {
        EXPECT_EQ(got[i].key, sorted[n - k + i].key);
        EXPECT_EQ(got[i].payload, sorted[n - k + i].payload);
    }
}

TEST(RadixBackend, ReportsLaunchesAndBoundedLevels) {
    const std::size_t n = 65536;
    const auto data =
        data::generate<float>({.n = n, .dist = data::Distribution::uniform_real, .seed = 3});
    SampleSelectConfig cfg;
    simt::Device dev(simt::arch_v100());
    auto res = core::try_radix_select_staged<float>(dev, stage(dev, cfg, data), n / 2, cfg);
    ASSERT_TRUE(res.ok());
    // Fused passes bound the level count by key_bits / (8 * fuse) = 1 for
    // float when every pass fuses all remaining digits; allow the filter
    // descent path some slack but hold the width bound.
    EXPECT_GE(res.value().levels, 1u);
    EXPECT_LE(res.value().levels, 4u);
}

}  // namespace
