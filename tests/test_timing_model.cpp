// Unit tests for the analytic timing model (simt/timing.hpp): the
// architectural contrasts the paper's evaluation rests on must be visible
// in simulated durations.

#include <gtest/gtest.h>

#include "simt/arch.hpp"
#include "simt/timing.hpp"

namespace {

using namespace gpusel::simt;

KernelProfile base_profile() {
    KernelProfile p;
    p.name = "k";
    p.grid_dim = 1280;  // enough threads for full utilization on V100
    p.block_dim = 256;
    return p;
}

TEST(TimingModel, LaunchLatencyOnly) {
    const auto arch = arch_v100();
    auto p = base_profile();
    const auto t = simulate_time(arch, p);
    EXPECT_DOUBLE_EQ(t.total_ns, arch.host_launch_ns);
}

TEST(TimingModel, DeviceLaunchCheaper) {
    const auto arch = arch_v100();
    auto p = base_profile();
    p.origin = LaunchOrigin::device;
    EXPECT_DOUBLE_EQ(simulate_time(arch, p).launch_ns, arch.device_launch_ns);
    EXPECT_LT(arch.device_launch_ns, arch.host_launch_ns);
}

TEST(TimingModel, MemoryTimeMatchesBandwidth) {
    const auto arch = arch_v100();
    auto p = base_profile();
    p.counters.global_bytes_read = 742'000'000;  // 1 ms at sustained BW
    const auto t = simulate_time(arch, p);
    EXPECT_NEAR(t.mem_ns, 1e6, 1e6 * 0.15);  // within the unroll-efficiency factor
    EXPECT_STREQ(t.bottleneck, "mem");
}

TEST(TimingModel, ScatteredTrafficSlower) {
    const auto arch = arch_v100();
    auto p = base_profile();
    p.counters.global_bytes_read = 1'000'000;
    const double coalesced = simulate_time(arch, p).mem_ns;
    p.counters.global_bytes_read = 0;
    p.counters.scattered_bytes_read = 1'000'000;
    const double scattered = simulate_time(arch, p).mem_ns;
    EXPECT_GT(scattered, 2.0 * coalesced);
}

TEST(TimingModel, SharedAtomicsFastOnVoltaSlowOnKepler) {
    auto p = base_profile();
    p.counters.shared_atomic_ops = 1'000'000;
    const double volta = simulate_time(arch_v100(), p).atomic_ns;
    const double kepler = simulate_time(arch_k20xm(), p).atomic_ns;
    EXPECT_LT(volta * 10.0, kepler);
}

TEST(TimingModel, GlobalAtomicsWinOnKeplerSharedOnVolta) {
    auto shared_p = base_profile();
    shared_p.counters.shared_atomic_ops = 1'000'000;
    auto global_p = base_profile();
    global_p.counters.global_atomic_ops = 1'000'000;
    // Kepler: global atomics faster than (lock-emulated) shared atomics.
    EXPECT_LT(simulate_time(arch_k20xm(), global_p).atomic_ns,
              simulate_time(arch_k20xm(), shared_p).atomic_ns);
    // Volta: native shared atomics are much faster than global ones.
    EXPECT_LT(simulate_time(arch_v100(), shared_p).atomic_ns,
              simulate_time(arch_v100(), global_p).atomic_ns / 10.0);
}

TEST(TimingModel, CollisionsPenalized) {
    auto p = base_profile();
    p.counters.shared_atomic_ops = 1'000'000;
    const double clean = simulate_time(arch_k20xm(), p).atomic_ns;
    p.counters.shared_atomic_collisions = 900'000;
    const double colliding = simulate_time(arch_k20xm(), p).atomic_ns;
    EXPECT_GT(colliding, 2.0 * clean);
}

TEST(TimingModel, CollisionTolerantVoltaSharedAtomics) {
    auto p = base_profile();
    p.counters.shared_atomic_ops = 1'000'000;
    const double clean = simulate_time(arch_v100(), p).atomic_ns;
    p.counters.shared_atomic_collisions = 900'000;
    const double colliding = simulate_time(arch_v100(), p).atomic_ns;
    // Sec. V-E: warp-aggregation unnecessary on V100 -> mild penalty only.
    EXPECT_LT(colliding, 1.5 * clean);
}

TEST(TimingModel, UnderUtilizationSlowsThroughput) {
    const auto arch = arch_v100();
    auto p = base_profile();
    p.counters.global_bytes_read = 1'000'000;
    const double full = simulate_time(arch, p).mem_ns;
    p.grid_dim = 2;  // almost no parallelism
    const double tiny = simulate_time(arch, p).mem_ns;
    EXPECT_GT(tiny, 5.0 * full);
}

TEST(TimingModel, BottleneckLabels) {
    const auto arch = arch_v100();
    auto p = base_profile();
    p.counters.shared_atomic_ops = 100'000'000;
    EXPECT_STREQ(simulate_time(arch, p).bottleneck, "atomic");
    p.counters.shared_atomic_ops = 0;
    p.counters.instructions = 1'000'000'000;
    EXPECT_STREQ(simulate_time(arch, p).bottleneck, "compute");
}

TEST(TimingModel, BarriersSerializeAcrossWaves) {
    const auto arch = arch_v100();
    auto p = base_profile();
    p.grid_dim = arch.num_sms * 8 * 4;  // 4 waves
    p.counters.block_barriers = static_cast<std::uint64_t>(p.grid_dim) * 10;
    const auto t = simulate_time(arch, p);
    EXPECT_GT(t.barrier_ns, 0.0);
}

TEST(TimingModel, TotalIsLaunchPlusBodyPlusBarriers) {
    const auto arch = arch_k20xm();
    auto p = base_profile();
    p.counters.global_bytes_read = 123456;
    p.counters.block_barriers = 100;
    const auto t = simulate_time(arch, p);
    EXPECT_DOUBLE_EQ(t.total_ns, t.launch_ns + t.body_ns + t.barrier_ns);
}

TEST(SuggestGrid, CoversDataAndRespectsCap) {
    const auto arch = arch_v100();
    EXPECT_EQ(suggest_grid(arch, 0, 256), 1);
    EXPECT_EQ(suggest_grid(arch, 256, 256), 1);
    EXPECT_EQ(suggest_grid(arch, 257, 256), 2);
    EXPECT_EQ(suggest_grid(arch, 1u << 28, 256), arch.num_sms * 2);
    // unroll shrinks the needed grid
    EXPECT_EQ(suggest_grid(arch, 1024, 256, 4), 1);
}

}  // namespace
