// Integration tests for exact SampleSelect: correctness against
// std::nth_element (the paper's reference, Sec. V-A) across distributions,
// sizes, duplicate structures, ranks and configurations.

#include "core/sample_select.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "data/distributions.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;
using core::SampleSelectConfig;

template <typename T>
void expect_selects_correctly(const std::vector<T>& data, std::size_t rank,
                              const SampleSelectConfig& cfg) {
    simt::Device dev(simt::arch_v100());
    const auto res = core::sample_select<T>(dev, data, rank, cfg);
    const T expect = stats::nth_element_reference(data, rank);
    // Values may be duplicated: compare rank intervals, not bit patterns.
    EXPECT_EQ(stats::rank_error<T>(data, res.value, rank), 0u)
        << "got " << res.value << " expected " << expect << " at rank " << rank;
    EXPECT_GT(res.sim_ns, 0.0);
}

TEST(SampleSelect, TinyInputsGoStraightToBaseCase) {
    SampleSelectConfig cfg;
    const std::vector<float> data{5, 3, 9, 1, 7};
    for (std::size_t k = 0; k < data.size(); ++k) {
        simt::Device dev(simt::arch_v100());
        const auto res = core::sample_select<float>(dev, data, k, cfg);
        EXPECT_EQ(res.value, stats::nth_element_reference(data, k));
        EXPECT_EQ(res.levels, 0u);
    }
}

TEST(SampleSelect, RejectsInvalidRank) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{1, 2, 3};
    EXPECT_THROW((void)core::sample_select<float>(dev, data, 3, {}), std::out_of_range);
    EXPECT_THROW((void)core::sample_select<float>(dev, std::vector<float>{}, 0, {}),
                 std::out_of_range);
}

TEST(SampleSelect, RejectsInvalidConfig) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{1, 2, 3};
    SampleSelectConfig cfg;
    cfg.num_buckets = 100;  // not a power of two
    EXPECT_THROW((void)core::sample_select<float>(dev, data, 1, cfg), std::invalid_argument);
    cfg.num_buckets = 512;  // exceeds the one-byte oracle limit
    EXPECT_THROW((void)core::sample_select<float>(dev, data, 1, cfg), std::invalid_argument);
}

// ---- the paper's main correctness sweep -----------------------------------

class SampleSelectDistributions
    : public ::testing::TestWithParam<std::tuple<data::Distribution, std::size_t>> {};

TEST_P(SampleSelectDistributions, MatchesNthElementFloat) {
    const auto [dist, seed] = GetParam();
    const std::size_t n = 1 << 15;
    const auto data = data::generate<float>({.n = n, .dist = dist, .seed = seed});
    const std::size_t rank = data::random_rank(n, seed);
    SampleSelectConfig cfg;
    cfg.seed = seed;
    expect_selects_correctly(data, rank, cfg);
}

TEST_P(SampleSelectDistributions, MatchesNthElementDouble) {
    const auto [dist, seed] = GetParam();
    const std::size_t n = 1 << 14;
    const auto data = data::generate<double>({.n = n, .dist = dist, .seed = seed + 1000});
    const std::size_t rank = data::random_rank(n, seed + 1000);
    SampleSelectConfig cfg;
    cfg.seed = seed;
    expect_selects_correctly(data, rank, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, SampleSelectDistributions,
    ::testing::Combine(::testing::ValuesIn(gpusel::data::all_distributions()),
                       ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{3})),
    [](const auto& info) {
        return to_string(std::get<0>(info.param)) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

// ---- duplicate handling (Sec. IV-C, paper's d = 1,16,128,1024,n inputs) ----

class SampleSelectDuplicates : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SampleSelectDuplicates, CorrectWithDDistinctValues) {
    const std::size_t d = GetParam();
    const std::size_t n = 1 << 15;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_distinct, .distinct_values = d, .seed = 17});
    for (std::uint64_t rs = 0; rs < 4; ++rs) {
        expect_selects_correctly(data, data::random_rank(n, rs), {});
    }
}

INSTANTIATE_TEST_SUITE_P(PaperValues, SampleSelectDuplicates,
                         ::testing::Values(1u, 16u, 128u, 1024u));

TEST(SampleSelect, AllEqualTerminatesViaEqualityBucket) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data(1 << 14, 3.5f);
    const auto res = core::sample_select<float>(dev, data, 1234, {});
    EXPECT_EQ(res.value, 3.5f);
    EXPECT_TRUE(res.equality_exit);
    EXPECT_EQ(res.levels, 1u);  // one counting level, no filter needed
}

// ---- configuration sweep (Sec. IV-H) ---------------------------------------

class SampleSelectConfigs
    : public ::testing::TestWithParam<std::tuple<int, simt::AtomicSpace, bool, int>> {};

TEST_P(SampleSelectConfigs, CorrectAcrossTuningParameters) {
    const auto [buckets, space, agg, unroll] = GetParam();
    SampleSelectConfig cfg;
    cfg.num_buckets = buckets;
    cfg.atomic_space = space;
    cfg.warp_aggregation = agg;
    cfg.unroll = unroll;
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 23});
    expect_selects_correctly(data, n / 3, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Tuning, SampleSelectConfigs,
    ::testing::Combine(::testing::Values(16, 64, 256),
                       ::testing::Values(simt::AtomicSpace::shared, simt::AtomicSpace::global),
                       ::testing::Bool(), ::testing::Values(1, 4)),
    [](const auto& info) {
        return "b" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) == simt::AtomicSpace::shared ? "_shared" : "_global") +
               (std::get<2>(info.param) ? "_agg" : "_plain") + "_u" +
               std::to_string(std::get<3>(info.param));
    });

// ---- extreme ranks -----------------------------------------------------------

TEST(SampleSelect, MinAndMaxRanks) {
    const std::size_t n = 1 << 14;
    const auto data = data::generate<double>(
        {.n = n, .dist = data::Distribution::exponential, .seed = 31});
    expect_selects_correctly(data, std::size_t{0}, {});
    expect_selects_correctly(data, n - 1, {});
    expect_selects_correctly(data, n / 2, {});
}

// ---- behaviour metadata ------------------------------------------------------

TEST(SampleSelect, RecursionDepthLogarithmic) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 18;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 3});
    SampleSelectConfig cfg;
    cfg.num_buckets = 256;
    const auto res = core::sample_select<float>(dev, data, n / 2, cfg);
    // 2^18 / 256 = 1024 = base case: one level should normally suffice;
    // allow slack for an unlucky oversized bucket.
    EXPECT_LE(res.levels, 3u);
    EXPECT_GE(res.levels, 1u);
}

TEST(SampleSelect, MoreBucketsReduceLevels) {
    const std::size_t n = 1 << 18;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 5});
    auto levels = [&](int b) {
        simt::Device dev(simt::arch_v100());
        SampleSelectConfig cfg;
        cfg.num_buckets = b;
        return core::sample_select<float>(dev, data, n / 2, cfg).levels;
    };
    EXPECT_LE(levels(256), levels(4));
}

TEST(SampleSelect, UsesDeviceLaunchesAfterFirstLevel) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 16;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 7});
    SampleSelectConfig cfg;
    cfg.num_buckets = 16;  // force several levels
    dev.clear_profiles();
    (void)core::sample_select<float>(dev, data, n / 2, cfg);
    bool saw_device_launch = false;
    for (const auto& p : dev.profiles()) {
        if (p.origin == simt::LaunchOrigin::device) saw_device_launch = true;
    }
    EXPECT_TRUE(saw_device_launch);  // dynamic-parallelism tail recursion
}

TEST(SampleSelect, DeterministicAcrossRuns) {
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::normal, .seed = 11});
    simt::Device dev1(simt::arch_v100());
    simt::Device dev2(simt::arch_v100());
    const auto a = core::sample_select<float>(dev1, data, 777, {});
    const auto b = core::sample_select<float>(dev2, data, 777, {});
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.sim_ns, b.sim_ns);
    EXPECT_EQ(a.launches, b.launches);
}

TEST(SampleSelect, WorksOnBothArchPresets) {
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 13});
    for (const char* arch : {"K20Xm", "V100"}) {
        simt::Device dev(simt::preset(arch));
        const auto res = core::sample_select<float>(dev, data, n / 4, {});
        EXPECT_EQ(stats::rank_error<float>(data, res.value, n / 4), 0u) << arch;
    }
}

}  // namespace
