// Tests for the memory-volume claims of Sec. IV-A: SampleSelect performs
// (1 + eps)n element reads/writes on average with <= n/4 auxiliary storage
// (single precision; half for double), while QuickSelect reads/writes ~2n
// with ~n/2 auxiliary storage.

#include <gtest/gtest.h>

#include "baselines/quickselect.hpp"
#include "core/approx_select.hpp"
#include "core/sample_select.hpp"
#include "data/distributions.hpp"

namespace {

using namespace gpusel;

struct Volumes {
    double element_units;  // total global traffic / sizeof(element)
    std::size_t aux_bytes;
    double data_bytes;
};

template <typename T>
Volumes sample_select_volume(std::size_t n) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<T>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 3});
    core::SampleSelectConfig cfg;
    cfg.num_buckets = 256;
    const auto res = core::sample_select<T>(dev, data, n / 2, cfg);
    const auto c = dev.counter_totals();
    return {static_cast<double>(c.total_global_bytes()) / sizeof(T), res.aux_bytes,
            static_cast<double>(n * sizeof(T))};
}

template <typename T>
Volumes quick_select_volume(std::size_t n) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<T>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 3});
    const auto res = baselines::quick_select<T>(dev, data, n / 2, {});
    const auto c = dev.counter_totals();
    return {static_cast<double>(c.total_global_bytes()) / sizeof(T), res.aux_bytes,
            static_cast<double>(n * sizeof(T))};
}

TEST(MemVolume, SampleSelectAuxAtMostQuarterFloat) {
    // The n/4 bound is asymptotic: the grid x buckets partial-count array
    // of the hierarchy is constant-size and vanishes for large n.
    const std::size_t n = 1 << 22;
    const auto v = sample_select_volume<float>(n);
    // oracles (1 B/element = n/4 element units) + bucket buffer + counters
    EXPECT_LE(static_cast<double>(v.aux_bytes), 0.30 * v.data_bytes);
    EXPECT_GE(static_cast<double>(v.aux_bytes), 0.20 * v.data_bytes);  // oracles dominate
}

TEST(MemVolume, SampleSelectAuxHalvesForDouble) {
    const std::size_t n = 1 << 17;
    const auto vf = sample_select_volume<float>(n);
    const auto vd = sample_select_volume<double>(n);
    const double rel_f = static_cast<double>(vf.aux_bytes) / vf.data_bytes;
    const double rel_d = static_cast<double>(vd.aux_bytes) / vd.data_bytes;
    // Footnote 1: double-precision inputs need only about half the relative
    // auxiliary storage (the one-byte oracles don't grow with the type).
    EXPECT_LT(rel_d, 0.65 * rel_f);
}

TEST(MemVolume, QuickSelectAuxAboutHalf) {
    const std::size_t n = 1 << 18;
    const auto v = quick_select_volume<float>(n);
    const double rel = static_cast<double>(v.aux_bytes) / v.data_bytes;
    EXPECT_LE(rel, 1.0);
    EXPECT_GE(rel, 0.25);  // first-level side is ~n/2 elements
}

TEST(MemVolume, SampleSelectMovesFarLessThanQuickSelect) {
    const std::size_t n = 1 << 18;
    const auto s = sample_select_volume<float>(n);
    const auto q = quick_select_volume<float>(n);
    EXPECT_LT(s.element_units, 0.6 * q.element_units);
}

TEST(MemVolume, SampleSelectElementTrafficNearN) {
    // count reads n elements + n oracle bytes; filter re-reads n oracle
    // bytes and moves ~2 eps n elements: total ~ (1.5 + 2 eps) n element
    // units for float.  Assert the (1+eps) shape with generous headroom.
    const std::size_t n = 1 << 18;
    const auto v = sample_select_volume<float>(n);
    const double per_element = v.element_units / static_cast<double>(n);
    EXPECT_GE(per_element, 1.0);
    EXPECT_LE(per_element, 2.2);
}

TEST(MemVolume, QuickSelectElementTrafficNearTwoN) {
    const std::size_t n = 1 << 18;
    const auto v = quick_select_volume<float>(n);
    const double per_element = v.element_units / static_cast<double>(n);
    // count pass n + write pass n per level over n + n/2 + n/4 + ...
    EXPECT_GE(per_element, 2.0);
    EXPECT_LE(per_element, 8.0);
}

TEST(MemVolume, ApproxTouchesInputOnlyOnce) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 22;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 3});
    core::SampleSelectConfig cfg;
    cfg.num_buckets = 1024;
    (void)core::approx_select<float>(dev, data, n / 2, cfg);
    const auto c = dev.counter_totals();
    const double per_element =
        static_cast<double>(c.total_global_bytes()) / sizeof(float) / static_cast<double>(n);
    EXPECT_LE(per_element, 1.3);  // one read of the input + small fixed extras
}

}  // namespace
