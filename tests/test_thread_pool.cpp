// Tests for the chunked work-stealing ThreadPool: exactly-once index
// coverage under stealing, inline execution with zero workers, exception
// propagation, and reuse across many tasks.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "simt/function_ref.hpp"
#include "simt/thread_pool.hpp"

namespace {

using gpusel::simt::ThreadPool;
using gpusel::simt::function_ref;

void expect_exactly_once(ThreadPool& pool, std::size_t count) {
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    pool.parallel_for(count, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "index " << i;
    }
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    for (const unsigned workers : {0u, 1u, 3u, 8u}) {
        ThreadPool pool(workers);
        EXPECT_EQ(pool.worker_count(), workers);
        for (const std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                        std::size_t{160}, std::size_t{10000}}) {
            expect_exactly_once(pool, count);
        }
    }
}

TEST(ThreadPool, InlineWithZeroWorkersRunsOnCaller) {
    ThreadPool pool(0);
    const auto caller = std::this_thread::get_id();
    std::size_t ran = 0;
    pool.parallel_for(64, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++ran;  // safe: inline execution is single-threaded
    });
    EXPECT_EQ(ran, 64u);
}

TEST(ThreadPool, UnevenWorkStillCompletes) {
    // Skewed per-index cost exercises the steal path: the first indices
    // are orders of magnitude slower than the tail.
    ThreadPool pool(4);
    std::atomic<std::size_t> done{0};
    pool.parallel_for(256, [&](std::size_t i) {
        if (i < 4) std::this_thread::sleep_for(std::chrono::milliseconds(5));
        done.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(done.load(), 256u);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
    for (const unsigned workers : {0u, 3u}) {
        ThreadPool pool(workers);
        EXPECT_THROW(
            pool.parallel_for(100,
                              [&](std::size_t i) {
                                  if (i == 37) throw std::runtime_error("boom");
                              }),
            std::runtime_error);
        // The pool must remain fully usable after a failed task.
        expect_exactly_once(pool, 500);
    }
}

TEST(ThreadPool, ReusableAcrossManyTasks) {
    ThreadPool pool(3);
    std::atomic<std::size_t> total{0};
    for (int rep = 0; rep < 200; ++rep) {
        pool.parallel_for(64, [&](std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(total.load(), 64u * 200u);
}

TEST(ThreadPool, FunctionRefInvokesCallable) {
    // function_ref is the non-allocating callable the pool traffics in;
    // check it forwards arguments and return values faithfully.
    int calls = 0;
    auto lambda = [&](std::size_t i) { calls += static_cast<int>(i); };
    function_ref<void(std::size_t)> ref(lambda);
    ref(2);
    ref(3);
    EXPECT_EQ(calls, 5);
}

TEST(ThreadPool, LargeCountNearChunkBoundaries) {
    ThreadPool pool(2);
    // Counts straddling participant-partition boundaries (participants = 3).
    for (const std::size_t count : {std::size_t{2}, std::size_t{3}, std::size_t{4},
                                    std::size_t{3 * 1024 - 1}, std::size_t{3 * 1024 + 1}}) {
        expect_exactly_once(pool, count);
    }
}

}  // namespace
