// Tests for the adaptive backend planner (core/planner.hpp): the pure
// decision table and its golden reason strings, the host-side distribution
// probe, the GPUSEL_BACKEND override (parsing, feasibility fallthrough,
// RobustnessCounters tallies), sampler-thrash feedback, and the
// cross-backend adversarial matrix -- every backend must return the same
// selected set on the distributions that defeat sampling.

#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/multiselect.hpp"
#include "core/sample_select.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;
using core::BackendKind;
using core::DistributionHints;
using core::PlanQuery;

/// Sets (or, with nullptr, unsets) an environment variable for the test's
/// scope and restores the previous state on destruction.
class ScopedEnv {
public:
    ScopedEnv(const char* name, const char* value) : name_(name) {
        if (const char* old = std::getenv(name)) {
            had_old_ = true;
            old_ = old;
        }
        if (value != nullptr) {
            ::setenv(name, value, /*overwrite=*/1);
        } else {
            ::unsetenv(name);
        }
    }
    ~ScopedEnv() {
        if (had_old_) {
            ::setenv(name_, old_.c_str(), 1);
        } else {
            ::unsetenv(name_);
        }
    }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

private:
    const char* name_;
    bool had_old_ = false;
    std::string old_;
};

// ---- parsing --------------------------------------------------------------

TEST(Planner, ParseBackendNames) {
    EXPECT_EQ(core::parse_backend("sample"), BackendKind::sample);
    EXPECT_EQ(core::parse_backend("radix"), BackendKind::radix);
    EXPECT_EQ(core::parse_backend("bitonic"), BackendKind::bitonic);
    EXPECT_EQ(core::parse_backend("auto"), std::nullopt);
    EXPECT_EQ(core::parse_backend(""), std::nullopt);
    EXPECT_EQ(core::parse_backend("quantum"), std::nullopt);
}

TEST(Planner, BackendNamesAreStable) {
    EXPECT_STREQ(core::backend_name(BackendKind::sample), "sample");
    EXPECT_STREQ(core::backend_name(BackendKind::radix), "radix");
    EXPECT_STREQ(core::backend_name(BackendKind::bitonic), "bitonic");
}

// ---- the pure decision table (golden reason strings) ----------------------

TEST(Planner, DecisionTableGolden) {
    const DistributionHints flat{.dominant_frac = 1.0 / 64, .probe_distinct = 64,
                                 .probe_size = 64};
    PlanQuery q;
    q.n = 1 << 20;
    q.k = 1 << 19;
    q.base_case_size = 1024;

    // 0. env override (feasible).
    auto d = core::plan(q, flat, BackendKind::radix);
    EXPECT_EQ(d.backend, BackendKind::radix);
    EXPECT_STREQ(d.reason, "GPUSEL_BACKEND override");
    EXPECT_TRUE(d.env_forced);

    // 0b. infeasible override falls through to the automatic rules.
    d = core::plan(q, flat, BackendKind::bitonic);  // n >> sort capacity
    EXPECT_EQ(d.backend, BackendKind::sample);
    EXPECT_FALSE(d.env_forced);

    // 1. multi-rank trees only exist in the sample machinery.
    PlanQuery multi = q;
    multi.multi = true;
    d = core::plan(multi, flat, std::nullopt);
    EXPECT_EQ(d.backend, BackendKind::sample);
    EXPECT_STREQ(d.reason, "multi-rank bucket tree");
    d = core::plan(multi, flat, BackendKind::radix);  // infeasible force
    EXPECT_EQ(d.backend, BackendKind::sample);
    EXPECT_FALSE(d.env_forced);

    // 2. small n.
    PlanQuery small = q;
    small.n = 600;
    d = core::plan(small, flat, std::nullopt);
    EXPECT_EQ(d.backend, BackendKind::bitonic);
    EXPECT_STREQ(d.reason, "small n: single-block bitonic sort");

    // 3. duplicate-heavy probe.
    const DistributionHints dup{.dominant_frac = 0.5, .probe_distinct = 3, .probe_size = 64};
    d = core::plan(q, dup, std::nullopt);
    EXPECT_EQ(d.backend, BackendKind::radix);
    EXPECT_STREQ(d.reason, "duplicate-heavy probe");

    // 4. low distinct-value probe (dominant below the duplicate cut).
    const DistributionHints lowd{.dominant_frac = 0.125, .probe_distinct = 8, .probe_size = 64};
    d = core::plan(q, lowd, std::nullopt);
    EXPECT_EQ(d.backend, BackendKind::radix);
    EXPECT_STREQ(d.reason, "low distinct-value probe");

    // 5. sampler-thrash feedback.
    PlanQuery thrash = q;
    thrash.thrash_delta = 2;
    d = core::plan(thrash, flat, std::nullopt);
    EXPECT_EQ(d.backend, BackendKind::radix);
    EXPECT_STREQ(d.reason, "sampler thrash feedback");

    // 6. deep top-k.
    PlanQuery deep = q;
    deep.topk = true;
    deep.k = q.n / 4;
    d = core::plan(deep, flat, std::nullopt);
    EXPECT_EQ(d.backend, BackendKind::radix);
    EXPECT_STREQ(d.reason, "deep top-k (k >= n/4)");
    deep.k = q.n / 8;  // shallow top-k stays with the sampler
    d = core::plan(deep, flat, std::nullopt);
    EXPECT_EQ(d.backend, BackendKind::sample);

    // 7. default.
    d = core::plan(q, flat, std::nullopt);
    EXPECT_EQ(d.backend, BackendKind::sample);
    EXPECT_STREQ(d.reason, "distribution-adaptive sampled descent");
}

// ---- the distribution probe -----------------------------------------------

TEST(Planner, ProbeAllEqual) {
    const std::vector<float> data(8192, 3.5f);
    const auto h = core::probe_distribution<float>(data);
    EXPECT_EQ(h.probe_size, core::kPlannerProbeSize);
    EXPECT_EQ(h.probe_distinct, 1u);
    EXPECT_DOUBLE_EQ(h.dominant_frac, 1.0);
}

TEST(Planner, ProbeAllDistinct) {
    std::vector<float> data(64);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<float>(i);
    const auto h = core::probe_distribution<float>(data);
    EXPECT_EQ(h.probe_size, 64u);
    EXPECT_EQ(h.probe_distinct, 64u);
    EXPECT_DOUBLE_EQ(h.dominant_frac, 1.0 / 64);
}

TEST(Planner, ProbeArgPairLooksAtKeysOnly) {
    // Unique payloads must not hide duplicate keys.
    std::vector<core::ArgPair> pairs(4096);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        pairs[i] = {1.25f, static_cast<std::uint32_t>(i)};
    }
    const auto h = core::probe_distribution<core::ArgPair>(pairs);
    EXPECT_EQ(h.probe_distinct, 1u);
    EXPECT_DOUBLE_EQ(h.dominant_frac, 1.0);
}

TEST(Planner, ProbeSignedZeroCollapses) {
    std::vector<float> data(128);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = i % 2 == 0 ? 0.0f : -0.0f;
    const auto h = core::probe_distribution<float>(data);
    EXPECT_EQ(h.probe_distinct, 1u);
}

// ---- planned front-end integration ---------------------------------------

TEST(Planner, AllEqualInputRoutesToRadix) {
    ScopedEnv env("GPUSEL_BACKEND", nullptr);
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data(8192, 7.0f);
    const auto r = core::sample_select<float>(dev, data, 4096, {});
    EXPECT_EQ(r.value, 7.0f);
    EXPECT_TRUE(r.equality_exit);
    EXPECT_EQ(dev.robustness().backend_radix, 1u);
    EXPECT_EQ(dev.robustness().backend_sample, 0u);
    EXPECT_EQ(dev.robustness().backend_env_overrides, 0u);
    ASSERT_EQ(dev.planner_log().size(), 1u);
    const auto& ev = dev.planner_log().front();
    EXPECT_EQ(ev.backend, "radix");
    EXPECT_EQ(ev.reason, "duplicate-heavy probe");
    EXPECT_EQ(ev.n, 8192u);
    EXPECT_EQ(ev.k, 4096u);
    EXPECT_FALSE(ev.env_forced);
}

TEST(Planner, HeavyDuplicateInputRoutesToRadix) {
    ScopedEnv env("GPUSEL_BACKEND", nullptr);
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>({.n = 8192,
                                             .dist = data::Distribution::uniform_distinct,
                                             .distinct_values = 2,
                                             .seed = 3});
    const auto r = core::sample_select<float>(dev, data, 4096, {});
    EXPECT_EQ(stats::rank_error<float>(data, r.value, 4096), 0u);
    EXPECT_EQ(dev.robustness().backend_radix, 1u);
    ASSERT_FALSE(dev.planner_log().empty());
    EXPECT_EQ(dev.planner_log().front().backend, "radix");
}

TEST(Planner, UniformInputKeepsSampledDescent) {
    ScopedEnv env("GPUSEL_BACKEND", nullptr);
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = 8192, .dist = data::Distribution::uniform_real, .seed = 17});
    const auto r = core::sample_select<float>(dev, data, 1234, {});
    EXPECT_EQ(stats::rank_error<float>(data, r.value, 1234), 0u);
    EXPECT_EQ(dev.robustness().backend_sample, 1u);
    EXPECT_EQ(dev.robustness().backend_radix, 0u);
    ASSERT_EQ(dev.planner_log().size(), 1u);
    EXPECT_EQ(dev.planner_log().front().reason, "distribution-adaptive sampled descent");
}

TEST(Planner, SmallInputRoutesToBitonic) {
    ScopedEnv env("GPUSEL_BACKEND", nullptr);
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = 512, .dist = data::Distribution::uniform_real, .seed = 9});
    const auto r = core::sample_select<float>(dev, data, 100, {});
    EXPECT_EQ(stats::rank_error<float>(data, r.value, 100), 0u);
    EXPECT_EQ(r.levels, 0u);
    EXPECT_EQ(dev.robustness().backend_bitonic, 1u);
    ASSERT_EQ(dev.planner_log().size(), 1u);
    EXPECT_EQ(dev.planner_log().front().reason, "small n: single-block bitonic sort");
}

TEST(Planner, DeepTopKRoutesToRadix) {
    ScopedEnv env("GPUSEL_BACKEND", nullptr);
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = 8192, .dist = data::Distribution::uniform_real, .seed = 29});
    const auto r = core::topk_largest<float>(dev, data, 4096, {});
    EXPECT_EQ(r.elements.size(), 4096u);
    EXPECT_EQ(dev.robustness().backend_radix, 1u);
    ASSERT_EQ(dev.planner_log().size(), 1u);
    EXPECT_EQ(dev.planner_log().front().reason, "deep top-k (k >= n/4)");

    // Shallow top-k on the same distribution stays with the sampler.
    dev.clear_planner_log();
    const auto r2 = core::topk_largest<float>(dev, data, 10, {});
    EXPECT_EQ(r2.elements.size(), 10u);
    EXPECT_EQ(dev.robustness().backend_sample, 1u);
}

TEST(Planner, MultiselectRecordsStructuralDecision) {
    ScopedEnv env("GPUSEL_BACKEND", nullptr);
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = 4096, .dist = data::Distribution::uniform_real, .seed = 5});
    const std::size_t ranks[] = {10, 100, 1000};
    const auto r = core::multi_select<float>(dev, data, ranks, {});
    EXPECT_EQ(r.values.size(), 3u);
    bool found = false;
    for (const auto& ev : dev.planner_log()) {
        if (ev.reason == "multi-rank bucket tree") {
            EXPECT_EQ(ev.backend, "sample");
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Planner, ThrashFeedbackSwitchesToRadixOnce) {
    ScopedEnv env("GPUSEL_BACKEND", nullptr);
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = 8192, .dist = data::Distribution::uniform_real, .seed = 31});
    // Simulate a sampler that just thrashed on this device: the feedback
    // rule must reroute the next selection to radix even though the probe
    // sees a healthy distribution.
    dev.robustness().resamples += 5;
    const auto r1 = core::sample_select<float>(dev, data, 4000, {});
    EXPECT_EQ(stats::rank_error<float>(data, r1.value, 4000), 0u);
    ASSERT_EQ(dev.planner_log().size(), 1u);
    EXPECT_EQ(dev.planner_log().front().reason, "sampler thrash feedback");
    EXPECT_EQ(dev.robustness().backend_radix, 1u);

    // The mark advanced; with no new thrash the next decision is back to
    // the sampled descent.
    dev.clear_planner_log();
    const auto r2 = core::sample_select<float>(dev, data, 4000, {});
    EXPECT_EQ(stats::rank_error<float>(data, r2.value, 4000), 0u);
    ASSERT_EQ(dev.planner_log().size(), 1u);
    EXPECT_EQ(dev.planner_log().front().backend, "sample");
}

TEST(Planner, ThrashFeedbackIgnoresDissimilarShapes) {
    ScopedEnv env("GPUSEL_BACKEND", nullptr);
    simt::Device dev(simt::arch_v100());
    const auto small = data::generate<float>(
        {.n = 8192, .dist = data::Distribution::uniform_real, .seed = 33});
    const auto large = data::generate<float>(
        {.n = 262144, .dist = data::Distribution::uniform_real, .seed = 34});

    // A selection establishes the feedback shape (n = 8192, float).
    (void)core::sample_select<float>(dev, small, 100, {});
    // Thrash counters grow, but the next selection's shape is 32x larger:
    // stale feedback from a dissimilar problem must NOT reroute it.
    dev.robustness().resamples += 5;
    dev.clear_planner_log();
    const auto r1 = core::sample_select<float>(dev, large, 100000, {});
    EXPECT_EQ(stats::rank_error<float>(large, r1.value, 100000), 0u);
    ASSERT_GE(dev.planner_log().size(), 1u);
    EXPECT_NE(dev.planner_log().front().reason, std::string("sampler thrash feedback"));

    // Same counters, similar shape (the large problem again): now the
    // feedback applies.
    dev.robustness().resamples += 5;
    dev.clear_planner_log();
    const auto r2 = core::sample_select<float>(dev, large, 100000, {});
    EXPECT_EQ(stats::rank_error<float>(large, r2.value, 100000), 0u);
    ASSERT_GE(dev.planner_log().size(), 1u);
    EXPECT_EQ(dev.planner_log().front().reason, std::string("sampler thrash feedback"));
}

// ---- GPUSEL_BACKEND override ----------------------------------------------

TEST(Planner, EnvOverrideForcesSampleOnDuplicates) {
    ScopedEnv env("GPUSEL_BACKEND", "sample");
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data(8192, 1.0f);
    const auto r = core::sample_select<float>(dev, data, 100, {});
    EXPECT_EQ(r.value, 1.0f);
    EXPECT_EQ(dev.robustness().backend_sample, 1u);
    EXPECT_EQ(dev.robustness().backend_radix, 0u);
    EXPECT_EQ(dev.robustness().backend_env_overrides, 1u);
    ASSERT_EQ(dev.planner_log().size(), 1u);
    EXPECT_EQ(dev.planner_log().front().reason, "GPUSEL_BACKEND override");
    EXPECT_TRUE(dev.planner_log().front().env_forced);
}

TEST(Planner, EnvOverrideForcesRadixOnUniform) {
    ScopedEnv env("GPUSEL_BACKEND", "radix");
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = 8192, .dist = data::Distribution::uniform_real, .seed = 13});
    const auto r = core::sample_select<float>(dev, data, 2222, {});
    EXPECT_EQ(stats::rank_error<float>(data, r.value, 2222), 0u);
    EXPECT_EQ(dev.robustness().backend_radix, 1u);
    EXPECT_EQ(dev.robustness().backend_env_overrides, 1u);
}

TEST(Planner, EnvOverrideAutoLetsThePlannerDecide) {
    ScopedEnv env("GPUSEL_BACKEND", "auto");
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = 8192, .dist = data::Distribution::uniform_real, .seed = 13});
    (void)core::sample_select<float>(dev, data, 2222, {});
    EXPECT_EQ(dev.robustness().backend_sample, 1u);
    EXPECT_EQ(dev.robustness().backend_env_overrides, 0u);
}

TEST(Planner, InfeasibleEnvOverrideFallsThrough) {
    // bitonic cannot run n > kMaxSortSize: the override is ignored and the
    // automatic rules decide (uniform -> sample), without counting an
    // override.
    ScopedEnv env("GPUSEL_BACKEND", "bitonic");
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = 8192, .dist = data::Distribution::uniform_real, .seed = 19});
    const auto r = core::sample_select<float>(dev, data, 4096, {});
    EXPECT_EQ(stats::rank_error<float>(data, r.value, 4096), 0u);
    EXPECT_EQ(dev.robustness().backend_sample, 1u);
    EXPECT_EQ(dev.robustness().backend_bitonic, 0u);
    EXPECT_EQ(dev.robustness().backend_env_overrides, 0u);
    EXPECT_FALSE(dev.planner_log().front().env_forced);
}

// ---- adversarial matrix: identical selected sets across backends ----------

std::vector<float> adversarial_dataset(const std::string& name, std::size_t n) {
    if (name == "all_equal") return std::vector<float>(n, 5.5f);
    if (name == "two_value") {
        std::vector<float> v(n);
        for (std::size_t i = 0; i < n; ++i) v[i] = (i * 2654435761u) % 3 == 0 ? -1.0f : 4.0f;
        return v;
    }
    if (name == "sorted") {
        return data::generate<float>(
            {.n = n, .dist = data::Distribution::sorted_ascending, .seed = 1});
    }
    if (name == "reverse") {
        return data::generate<float>(
            {.n = n, .dist = data::Distribution::sorted_descending, .seed = 1});
    }
    // Zipf-duplicated values: heavy repetition of the popular ranks.
    return data::generate<float>({.n = n, .dist = data::Distribution::zipf, .seed = 2});
}

TEST(Planner, AdversarialMatrixAllBackendsAgree) {
    const std::size_t n = 2048;  // within bitonic sort capacity
    const char* dists[] = {"all_equal", "two_value", "sorted", "reverse", "zipf"};
    const char* backends[] = {"sample", "radix", "bitonic"};

    for (const char* dist : dists) {
        const auto data = adversarial_dataset(dist, n);
        std::vector<float> sorted = data;
        std::sort(sorted.begin(), sorted.end());

        for (const std::size_t k : {std::size_t{1}, n / 2, n - 1}) {
            for (const char* backend : backends) {
                ScopedEnv env("GPUSEL_BACKEND", backend);
                SCOPED_TRACE(std::string(dist) + " k=" + std::to_string(k) + " " + backend);

                // Rank selection: the value at rank k must be exact.
                simt::Device sel_dev(simt::arch_v100());
                const auto r = core::sample_select<float>(sel_dev, data, k, {});
                EXPECT_EQ(r.value, sorted[k]);
                EXPECT_EQ(sel_dev.robustness().backend_env_overrides, 1u);

                // Top-k: the selected multiset must equal the reference
                // top-k slice (identical across backends by transitivity).
                simt::Device topk_dev(simt::arch_v100());
                const auto t = core::topk_largest<float>(topk_dev, data, k, {});
                ASSERT_EQ(t.elements.size(), k);
                std::vector<float> got = t.elements;
                std::sort(got.begin(), got.end());
                for (std::size_t i = 0; i < k; ++i) {
                    ASSERT_EQ(got[i], sorted[n - k + i]) << "slot " << i;
                }
                EXPECT_EQ(t.threshold, sorted[n - k]);
            }
        }
    }
}

}  // namespace
