// Golden event-count regression tests: for small handcrafted scenarios the
// exact counter values are computed by hand and pinned.  These protect the
// instrumentation contract that every paper figure rests on -- if a kernel
// starts charging different byte/atomic/ballot counts, these fail first.

#include <gtest/gtest.h>

#include <numeric>

#include "core/count_kernel.hpp"
#include "core/filter_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "core/searchtree.hpp"
#include "simt/device.hpp"

namespace {

using namespace gpusel;

// Scenario: n = 1024 floats (values 0..1023), b = 4 buckets with splitters
// {256, 512, 768}, block_dim = 256.  grid = ceil(1024/256) = 4 blocks,
// 8 warps per block, 32 warp tiles total.
struct Golden {
    simt::Device dev{simt::arch_v100()};
    static constexpr std::size_t kN = 1024;
    static constexpr std::size_t kB = 4;
    std::vector<float> data;
    core::SearchTree<float> tree;
    core::SampleSelectConfig cfg;

    Golden() {
        data.resize(kN);
        std::iota(data.begin(), data.end(), 0.0f);
        tree = core::SearchTree<float>::build({256.0f, 512.0f, 768.0f});
        cfg.num_buckets = kB;
        cfg.block_dim = 256;
    }
};

TEST(EventGolden, CountKernelSharedPlain) {
    Golden g;
    g.cfg.atomic_space = simt::AtomicSpace::shared;
    g.cfg.warp_aggregation = false;
    auto totals = g.dev.alloc<std::int32_t>(Golden::kB);
    auto oracles = g.dev.alloc<std::uint8_t>(Golden::kN);
    auto bc = g.dev.alloc<std::int32_t>(4 * Golden::kB);
    g.dev.clear_profiles();
    core::count_kernel<float>(g.dev, g.data, g.tree, oracles.span(), totals.span(), bc.span(),
                              g.cfg, simt::LaunchOrigin::host);
    const auto& c = g.dev.profiles().back().counters;

    // element loads: 1024 * 4 B; tree staging: 4 blocks * (3*4 + 3) B
    EXPECT_EQ(c.global_bytes_read, 1024u * 4 + 4 * 15);
    // oracle bytes + per-block partial counts (4 blocks * 4 buckets * 4 B)
    EXPECT_EQ(c.global_bytes_written, 1024u + 4 * 4 * 4);
    // one shared atomic per element
    EXPECT_EQ(c.shared_atomic_ops, 1024u);
    // each 32-lane warp covers 32 consecutive integers: within one tile all
    // values land in the same bucket (buckets are 256 wide and aligned), so
    // 31 collisions per warp, 32 warps
    EXPECT_EQ(c.shared_atomic_collisions, 32u * 31);
    EXPECT_EQ(c.warp_ballots, 0u);
    EXPECT_EQ(c.global_atomic_ops, 0u);
    // traversal: height=2 instructions per element
    EXPECT_EQ(c.instructions, 1024u * 2);
}

TEST(EventGolden, CountKernelGlobalAggregated) {
    Golden g;
    g.cfg.atomic_space = simt::AtomicSpace::global;
    g.cfg.warp_aggregation = true;
    auto totals = g.dev.alloc<std::int32_t>(Golden::kB);
    core::launch_memset32(g.dev, totals.span(), simt::LaunchOrigin::host);
    auto oracles = g.dev.alloc<std::uint8_t>(Golden::kN);
    g.dev.clear_profiles();
    core::count_kernel<float>(g.dev, g.data, g.tree, oracles.span(), totals.span(), {}, g.cfg,
                              simt::LaunchOrigin::host);
    const auto& c = g.dev.profiles().back().counters;

    // aggregated: one atomic per distinct bucket per warp = 1 per warp here
    EXPECT_EQ(c.global_atomic_ops, 32u);
    EXPECT_EQ(c.global_atomic_collisions, 0u);
    // height(=2) ballots per warp tile
    EXPECT_EQ(c.warp_ballots, 32u * 2);
    EXPECT_EQ(c.shared_atomic_ops, 0u);
    // histogram is correct
    for (std::size_t i = 0; i < Golden::kB; ++i) EXPECT_EQ(totals[i], 256);
}

TEST(EventGolden, ReduceKernelTraffic) {
    Golden g;
    const int grid = 4;
    auto bc = g.dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * Golden::kB);
    for (std::size_t i = 0; i < bc.size(); ++i) bc[i] = 1;
    auto totals = g.dev.alloc<std::int32_t>(Golden::kB);
    g.dev.clear_profiles();
    core::reduce_kernel(g.dev, bc.span(), grid, Golden::kB, totals.span(), true,
                        simt::LaunchOrigin::host);
    const auto& c = g.dev.profiles().back().counters;
    // 4 columns x 4 rows read and rewritten + 4 totals written
    EXPECT_EQ(c.global_bytes_read, 4u * 4 * 4);
    EXPECT_EQ(c.global_bytes_written, 4u * 4 * 4 + 4 * 4);
    EXPECT_EQ(c.instructions, 16u);
}

TEST(EventGolden, FilterKernelTraffic) {
    Golden g;
    g.cfg.atomic_space = simt::AtomicSpace::shared;
    auto totals = g.dev.alloc<std::int32_t>(Golden::kB);
    auto oracles = g.dev.alloc<std::uint8_t>(Golden::kN);
    auto bc = g.dev.alloc<std::int32_t>(4 * Golden::kB);
    core::count_kernel<float>(g.dev, g.data, g.tree, oracles.span(), totals.span(), bc.span(),
                              g.cfg, simt::LaunchOrigin::host);
    core::reduce_kernel(g.dev, bc.span(), 4, Golden::kB, totals.span(), true,
                        simt::LaunchOrigin::host);
    auto out = g.dev.alloc<float>(256);
    g.dev.clear_profiles();
    core::filter_kernel<float>(g.dev, g.data, oracles.span(), /*bucket=*/2, out.span(),
                               bc.span(), Golden::kB, {}, g.cfg, simt::LaunchOrigin::host, 4);
    const auto& c = g.dev.profiles().back().counters;
    // oracle scan (1024 B) + 4 per-block base offsets
    EXPECT_EQ(c.global_bytes_read, 1024u + 4 * 4);
    // predicated loads of the 256 matching elements
    EXPECT_EQ(c.scattered_bytes_read, 256u * 4);
    // compacted writes of the same
    EXPECT_EQ(c.global_bytes_written, 256u * 4);
    // ballot-aggregated cursor: one atomic + one ballot per warp that
    // contains matches... every warp's tile is bucket-uniform, so exactly
    // 8 warps match; but the ballot happens in every warp.
    EXPECT_EQ(c.warp_ballots, 32u);
    EXPECT_EQ(c.shared_atomic_ops, 8u);
    // bucket 2 = values [512, 768): extraction preserves order here
    for (std::size_t i = 0; i < 256; ++i) {
        ASSERT_EQ(out[i], 512.0f + static_cast<float>(i));
    }
}

TEST(EventGolden, TimingDeterminism) {
    // Same scenario twice: identical simulated durations, bit for bit.
    auto run = [] {
        Golden g;
        auto totals = g.dev.alloc<std::int32_t>(Golden::kB);
        auto oracles = g.dev.alloc<std::uint8_t>(Golden::kN);
        auto bc = g.dev.alloc<std::int32_t>(4 * Golden::kB);
        core::count_kernel<float>(g.dev, g.data, g.tree, oracles.span(), totals.span(),
                                  bc.span(), g.cfg, simt::LaunchOrigin::host);
        return g.dev.elapsed_ns();
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
