// Tests for the BucketSelect baseline (Alabi et al.), including the
// adversarial-distribution degradation that motivates SampleSelect
// (Sec. V-D: "doesn't suffer from the existence of adversarial input
// datasets").

#include "baselines/bucketselect.hpp"

#include <gtest/gtest.h>

#include "data/distributions.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;
using baselines::bucket_select;
using baselines::BucketSelectConfig;

class BucketSelectSweep : public ::testing::TestWithParam<data::Distribution> {};

TEST_P(BucketSelectSweep, MatchesReferenceFloat) {
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>({.n = n, .dist = GetParam(), .seed = 41});
    for (std::uint64_t rs = 0; rs < 3; ++rs) {
        simt::Device dev(simt::arch_v100());
        const std::size_t rank = data::random_rank(n, rs);
        const auto res = bucket_select<float>(dev, data, rank, {});
        EXPECT_EQ(stats::rank_error<float>(data, res.value, rank), 0u)
            << to_string(GetParam()) << " rank " << rank;
    }
}

TEST_P(BucketSelectSweep, MatchesReferenceDouble) {
    const std::size_t n = 1 << 13;
    const auto data = data::generate<double>({.n = n, .dist = GetParam(), .seed = 43});
    simt::Device dev(simt::arch_v100());
    const std::size_t rank = data::random_rank(n, 9);
    const auto res = bucket_select<double>(dev, data, rank, {});
    EXPECT_EQ(stats::rank_error<double>(data, res.value, rank), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, BucketSelectSweep,
                         ::testing::ValuesIn(data::all_distributions()),
                         [](const auto& info) { return to_string(info.param); });

TEST(BucketSelect, AllEqualReturnsImmediately) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data(1 << 14, 4.0f);
    const auto res = bucket_select<float>(dev, data, 100, {});
    EXPECT_EQ(res.value, 4.0f);
    EXPECT_EQ(res.levels, 0u);
}

TEST(BucketSelect, UniformDataFewLevels) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 17;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 3});
    const auto res = bucket_select<float>(dev, data, n / 2, {});
    // uniform values: value-range splitting is near-optimal
    EXPECT_LE(res.levels, 2u);
}

TEST(BucketSelect, AdversarialClusterNeedsManyMoreLevels) {
    const std::size_t n = 1 << 16;
    const auto uniform = data::generate<double>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 5});
    const auto advers = data::generate<double>(
        {.n = n, .dist = data::Distribution::adversarial_cluster, .seed = 5});
    // pick a rank inside the cluster (99% of mass): the median qualifies
    simt::Device du(simt::arch_v100());
    const auto ru = bucket_select<double>(du, uniform, n / 2, {});
    simt::Device da(simt::arch_v100());
    const auto ra = bucket_select<double>(da, advers, n / 2, {});
    EXPECT_EQ(stats::rank_error<double>(advers, ra.value, n / 2), 0u);
    EXPECT_GE(ra.levels, ru.levels + 2);
    EXPECT_GT(ra.sim_ns, 1.5 * ru.sim_ns);
}

TEST(BucketSelect, GlobalAtomicMode) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::normal, .seed = 7});
    BucketSelectConfig cfg;
    cfg.atomic_space = simt::AtomicSpace::global;
    const auto res = bucket_select<float>(dev, data, n / 4, cfg);
    EXPECT_EQ(stats::rank_error<float>(data, res.value, n / 4), 0u);
}

TEST(BucketSelect, CheaperPerLevelThanSampleSelectCount) {
    // The point of BucketSelect: bucket index arithmetic is trivial.  Its
    // count kernel must charge fewer instruction-equivalents per element
    // than SampleSelect's tree traversal.
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 11});
    dev.clear_profiles();
    (void)bucket_select<float>(dev, data, n / 2, {});
    std::uint64_t bucket_count_instr = 0;
    for (const auto& p : dev.profiles()) {
        if (p.name == "bucket_count") {
            bucket_count_instr = p.counters.instructions;
            break;
        }
    }
    ASSERT_GT(bucket_count_instr, 0u);
    EXPECT_LE(bucket_count_instr, 3 * n + 1024);  // ~3 instr/element
}

TEST(BucketSelect, InvalidConfigThrows) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{1, 2, 3};
    BucketSelectConfig bad;
    bad.num_buckets = 1;
    EXPECT_THROW((void)bucket_select<float>(dev, data, 0, bad), std::invalid_argument);
}

}  // namespace
