// Seeded fault soak (docs/robustness.md "Soak testing"): >= 1000 scenarios
// of (front-end x data distribution x fault schedule), each of which must
// end in a provably correct result or a typed Status -- never a crash, a
// hang, or a silently wrong answer.  Every scenario is a deterministic
// function of its index, so a failure report names a replayable (seed,
// spec) pair.  GPUSEL_SOAK_SCENARIOS overrides the scenario count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <span>
#include <vector>

#include "core/approx_select.hpp"
#include "core/batched_select.hpp"
#include "core/float_order.hpp"
#include "core/histogram.hpp"
#include "core/multiselect.hpp"
#include "core/sample_select.hpp"
#include "core/sample_sort.hpp"
#include "core/status.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simt/arch.hpp"
#include "simt/device.hpp"
#include "simt/fault.hpp"

namespace {

using namespace gpusel;

constexpr std::size_t kN = 4096;

std::size_t scenario_count() {
    if (const char* env = std::getenv("GPUSEL_SOAK_SCENARIOS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    return 1000;
}

core::SampleSelectConfig soak_cfg(std::size_t scenario) {
    core::SampleSelectConfig cfg;
    cfg.num_buckets = 16;
    cfg.base_case_size = 512;
    cfg.seed = 1000 + scenario;
    return cfg;
}

/// Deterministic fault schedule for a scenario: cycles through fault-free,
/// alloc-only, launch-only, combined, and bursty combined (with stalls).
simt::FaultSpec soak_faults(std::size_t scenario) {
    simt::FaultSpec spec;
    spec.seed = 7 * scenario + 1;
    switch (scenario % 5) {
        case 0: break;  // fault-free control
        case 1: spec.alloc_rate = 0.03; break;
        case 2: spec.launch_rate = 0.03; break;
        case 3:
            spec.alloc_rate = 0.02;
            spec.launch_rate = 0.02;
            spec.stall_rate = 0.05;
            spec.stall_ns = 500.0;
            break;
        default:
            spec.alloc_rate = 0.02;
            spec.launch_rate = 0.02;
            spec.alloc_burst = 2;
            spec.launch_burst = 2;
            break;
    }
    return spec;
}

std::vector<double> soak_data(std::size_t scenario) {
    static const data::Distribution dists[] = {
        data::Distribution::uniform_real,       data::Distribution::normal,
        data::Distribution::uniform_distinct,   data::Distribution::adversarial_cluster,
        data::Distribution::adversarial_geometric, data::Distribution::zipf,
        data::Distribution::sorted_ascending,
    };
    constexpr std::size_t kDists = sizeof(dists) / sizeof(dists[0]);
    auto data = data::generate<double>(
        {.n = kN, .dist = dists[scenario % kDists], .seed = 100 + scenario});
    // Every third scenario gets NaN-laced keys.
    if (scenario % 3 == 0) {
        for (std::size_t i = 0; i < kN; i += 97) data[i] = core::quiet_nan<double>();
    }
    return data;
}

/// Errors a fault schedule may legitimately surface.  Anything else
/// (internal, no_progress, precondition codes for valid inputs) fails the
/// soak.
bool is_fault_error(core::SelectError e) {
    return e == core::SelectError::allocation_failed || e == core::SelectError::launch_failed;
}

template <typename R>
::testing::AssertionResult ok_or_fault(const core::Result<R>& res) {
    if (res.ok() || is_fault_error(res.error())) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << "unexpected error: " << res.status().to_message();
}

TEST(FaultSoak, EveryScenarioEndsCorrectOrTyped) {
    const std::size_t scenarios = scenario_count();
    std::size_t succeeded = 0;
    std::size_t faulted = 0;

    for (std::size_t s = 0; s < scenarios; ++s) {
        SCOPED_TRACE("scenario " + std::to_string(s));
        const auto data = soak_data(s);
        auto sorted = data;
        std::sort(sorted.begin(), sorted.end(),
                  [](double a, double b) { return core::total_less(a, b); });
        const std::size_t nans = core::count_nan_keys(std::span<const double>(data));
        const std::size_t n_num = kN - nans;
        const auto cfg = soak_cfg(s);

        simt::Device dev(simt::arch_v100());
        dev.set_faults(soak_faults(s));

        const std::size_t rank = (s * 131) % kN;
        bool ok = false;
        switch (s % 8) {
            case 0: {  // exact selection
                auto res = core::try_sample_select<double>(dev, data, rank, cfg);
                ASSERT_TRUE(ok_or_fault(res));
                if ((ok = res.ok())) {
                    EXPECT_TRUE(core::total_equal(res.value().value, sorted[rank])) << rank;
                }
                break;
            }
            case 1: {  // top-k largest
                const std::size_t k = 1 + rank % 512;
                auto res = core::try_topk_largest<double>(dev, data, k, cfg);
                ASSERT_TRUE(ok_or_fault(res));
                if ((ok = res.ok())) {
                    ASSERT_EQ(res.value().elements.size(), k);
                    const double kth = sorted[kN - k];
                    for (const double v : res.value().elements) {
                        EXPECT_FALSE(core::total_less(v, kth));
                    }
                }
                break;
            }
            case 2: {  // top-k smallest
                const std::size_t k = 1 + rank % 512;
                auto res = core::try_topk_smallest<double>(dev, data, k, cfg);
                ASSERT_TRUE(ok_or_fault(res));
                if ((ok = res.ok())) {
                    ASSERT_EQ(res.value().elements.size(), k);
                    for (const double v : res.value().elements) {
                        EXPECT_FALSE(core::total_less(sorted[k - 1], v));
                    }
                }
                break;
            }
            case 3: {  // multi-rank
                const std::vector<std::size_t> ranks{rank, kN / 2, kN - 1};
                auto res = core::try_multi_select<double>(dev, data, ranks, cfg);
                ASSERT_TRUE(ok_or_fault(res));
                if ((ok = res.ok())) {
                    for (std::size_t i = 0; i < ranks.size(); ++i) {
                        EXPECT_TRUE(
                            core::total_equal(res.value().values[i], sorted[ranks[i]]))
                            << "rank " << ranks[i];
                    }
                }
                break;
            }
            case 4: {  // histogram
                auto res = core::try_equi_depth_histogram<double>(dev, data, cfg);
                ASSERT_TRUE(ok_or_fault(res));
                if ((ok = res.ok())) {
                    EXPECT_EQ(static_cast<std::size_t>(res.value().cumulative.back()), kN);
                }
                break;
            }
            case 5: {  // approximate selection
                auto res = core::try_approx_select<double>(dev, data, rank, cfg);
                ASSERT_TRUE(ok_or_fault(res));
                if ((ok = res.ok()) && rank < n_num) {
                    // The rank error is exact by construction; verify it.
                    const auto& p = res.value();
                    std::size_t lt = 0;
                    for (const double v : data) {
                        if (core::total_less(v, p.value)) ++lt;
                    }
                    EXPECT_LE(lt, p.splitter_rank);
                    EXPECT_EQ(p.rank_error, p.splitter_rank > rank ? p.splitter_rank - rank
                                                                   : rank - p.splitter_rank);
                }
                break;
            }
            case 6: {  // batched selection (4 sequences of 1024)
                const std::vector<std::size_t> offsets{0, 1024, 2048, 3072, kN};
                const std::vector<std::size_t> ranks{rank % 1024, 0, 1023, 512};
                auto res = core::try_batched_select<double>(dev, data, offsets, ranks, cfg);
                ASSERT_TRUE(ok_or_fault(res));
                if ((ok = res.ok())) {
                    for (std::size_t i = 0; i < ranks.size(); ++i) {
                        const auto lo = static_cast<std::ptrdiff_t>(1024 * i);
                        std::vector<double> seq(data.begin() + lo, data.begin() + lo + 1024);
                        std::sort(seq.begin(), seq.end(), [](double a, double b) {
                            return core::total_less(a, b);
                        });
                        EXPECT_TRUE(core::total_equal(res.value().values[i], seq[ranks[i]]))
                            << "seq " << i;
                    }
                }
                break;
            }
            default: {  // full sort
                auto res = core::try_sample_sort<double>(dev, data, cfg);
                ASSERT_TRUE(ok_or_fault(res));
                if ((ok = res.ok())) {
                    ASSERT_EQ(res.value().sorted.size(), kN);
                    for (std::size_t i = 0; i < kN; ++i) {
                        EXPECT_TRUE(core::total_equal(res.value().sorted[i], sorted[i])) << i;
                    }
                }
                break;
            }
        }
        succeeded += ok ? 1 : 0;
        faulted += ok ? 0 : 1;
        if (::testing::Test::HasFailure()) {
            FAIL() << "soak stopped at scenario " << s << " (fault seed "
                   << soak_faults(s).seed << ")";
        }
    }

    // The bounded-retry policy should recover the vast majority of 2-3%
    // fault rates; fault-free control scenarios (1 in 5) always succeed.
    EXPECT_GE(succeeded, scenarios * 3 / 5)
        << succeeded << "/" << scenarios << " scenarios recovered";
    RecordProperty("scenarios", static_cast<int>(scenarios));
    RecordProperty("succeeded", static_cast<int>(succeeded));
    RecordProperty("typed_failures", static_cast<int>(faulted));
}

}  // namespace
