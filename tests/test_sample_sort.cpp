// Tests for the complete sample sort (future-work extension, Sec. VI).

#include "core/sample_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/distributions.hpp"

namespace {

using namespace gpusel;

template <typename T>
void expect_sorts(const std::vector<T>& data, const core::SampleSelectConfig& cfg = {}) {
    simt::Device dev(simt::arch_v100());
    const auto res = core::sample_sort<T>(dev, data, cfg);
    std::vector<T> expect(data);
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(res.sorted.size(), expect.size());
    EXPECT_EQ(res.sorted, expect);
}

TEST(SampleSort, EmptyAndTiny) {
    expect_sorts<float>({});
    expect_sorts<float>({3});
    expect_sorts<float>({3, 1});
    expect_sorts<float>({2, 2, 2});
}

TEST(SampleSort, BaseCaseOnly) {
    const auto data = data::generate<float>(
        {.n = 1000, .dist = data::Distribution::uniform_real, .seed = 1});
    expect_sorts(data);
}

class SampleSortDistributions : public ::testing::TestWithParam<data::Distribution> {};

TEST_P(SampleSortDistributions, SortsCorrectly) {
    const auto data = data::generate<float>({.n = 1 << 14, .dist = GetParam(), .seed = 3});
    expect_sorts(data);
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, SampleSortDistributions,
                         ::testing::ValuesIn(data::all_distributions()),
                         [](const auto& info) { return to_string(info.param); });

TEST(SampleSort, DuplicateHeavy) {
    const auto data = data::generate<double>({.n = 1 << 14,
                                              .dist = data::Distribution::uniform_distinct,
                                              .distinct_values = 8,
                                              .seed = 5});
    expect_sorts(data);
}

TEST(SampleSort, LargerMultiLevel) {
    simt::Device dev(simt::arch_v100());
    core::SampleSelectConfig cfg;
    cfg.num_buckets = 16;  // force at least two levels at n = 2^16
    const auto data = data::generate<float>(
        {.n = 1 << 16, .dist = data::Distribution::normal, .seed = 7});
    const auto res = core::sample_sort<float>(dev, data, cfg);
    EXPECT_TRUE(std::is_sorted(res.sorted.begin(), res.sorted.end()));
    EXPECT_GE(res.max_depth, 1u);
}

TEST(SampleSort, DoublePrecision) {
    const auto data = data::generate<double>(
        {.n = 1 << 13, .dist = data::Distribution::exponential, .seed = 9});
    expect_sorts(data);
}

}  // namespace
