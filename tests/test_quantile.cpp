// Tests for the quantile convenience layer (core/quantile.hpp).

#include "core/quantile.hpp"

#include <gtest/gtest.h>

#include "data/distributions.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;
using core::QuantileMethod;
using core::quantile_rank;

TEST(QuantileRank, Endpoints) {
    EXPECT_EQ(quantile_rank(100, 0.0), 0u);
    EXPECT_EQ(quantile_rank(100, 1.0), 99u);
    EXPECT_EQ(quantile_rank(1, 0.5), 0u);
}

TEST(QuantileRank, Methods) {
    // n = 10 -> position of q=0.5 is 4.5
    EXPECT_EQ(quantile_rank(10, 0.5, QuantileMethod::lower), 4u);
    EXPECT_EQ(quantile_rank(10, 0.5, QuantileMethod::higher), 5u);
    // nearest rounds half away from zero: 4.5 -> 5
    EXPECT_EQ(quantile_rank(10, 0.5, QuantileMethod::nearest), 5u);
    // exact positions agree across methods
    for (auto m : {QuantileMethod::lower, QuantileMethod::nearest, QuantileMethod::higher}) {
        EXPECT_EQ(quantile_rank(11, 0.5, m), 5u);
    }
}

TEST(QuantileRank, Invalid) {
    EXPECT_THROW((void)quantile_rank(0, 0.5), std::invalid_argument);
    EXPECT_THROW((void)quantile_rank(10, -0.1), std::invalid_argument);
    EXPECT_THROW((void)quantile_rank(10, 1.1), std::invalid_argument);
}

TEST(Quantile, ExactMatchesReference) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::lognormal, .seed = 3});
    for (const double q : {0.1, 0.5, 0.9, 0.99}) {
        const auto rank = quantile_rank(n, q);
        const float v = core::quantile<float>(dev, data, q);
        EXPECT_EQ(stats::rank_error<float>(data, v, rank), 0u) << "q=" << q;
    }
}

TEST(Quantile, MedianShortcut) {
    simt::Device dev(simt::arch_v100());
    const std::vector<double> data{5, 1, 9, 3, 7};
    EXPECT_EQ(core::median<double>(dev, data), 5.0);
}

TEST(Quantile, ApproxWithinBucketBound) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 15;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 7});
    const auto r = core::approx_quantile<float>(dev, data, 0.75);
    EXPECT_LE(r.rank_error, r.max_bucket);
}

TEST(Quantile, MultiQuantilesOrderedAndCorrect) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::exponential, .seed = 11});
    const std::vector<double> qs{0.25, 0.5, 0.75};
    const auto vs = core::quantiles<float>(dev, data, qs);
    ASSERT_EQ(vs.size(), 3u);
    EXPECT_LE(vs[0], vs[1]);
    EXPECT_LE(vs[1], vs[2]);
    for (std::size_t i = 0; i < qs.size(); ++i) {
        EXPECT_EQ(stats::rank_error<float>(data, vs[i], quantile_rank(n, qs[i])), 0u);
    }
}

TEST(ApproxMulti, OnePassManyRanks) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 16;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 13});
    std::vector<std::size_t> ranks;
    for (std::size_t i = 1; i < 10; ++i) ranks.push_back(i * n / 10);
    const auto res = core::approx_multi_select<float>(dev, data, ranks, {});
    ASSERT_EQ(res.points.size(), ranks.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        const auto& p = res.points[i];
        EXPECT_LE(p.rank_error, p.max_bucket);
        // the reported splitter rank lies within the value's rank interval
        const auto lo = stats::min_rank<float>(data, p.value);
        EXPECT_GE(p.splitter_rank, lo);
        EXPECT_LE(p.splitter_rank, lo + stats::multiplicity<float>(data, p.value));
    }
    // one sample + one count + reduce + select: a handful of launches for 9 ranks
    EXPECT_LE(res.launches, 6u);
}

TEST(ApproxMulti, CostIndependentOfRankCount) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 16;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 17});
    const std::vector<std::size_t> one{n / 2};
    std::vector<std::size_t> many;
    for (std::size_t i = 0; i < 50; ++i) many.push_back(i * n / 50);
    const double t1 = core::approx_multi_select<float>(dev, data, one, {}).sim_ns;
    const double t50 = core::approx_multi_select<float>(dev, data, many, {}).sim_ns;
    EXPECT_NEAR(t50, t1, t1 * 0.01);  // identical device work
}

TEST(ApproxMulti, EmptyRanks) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{1, 2, 3};
    const auto res = core::approx_multi_select<float>(dev, data, {}, {});
    EXPECT_TRUE(res.points.empty());
}

}  // namespace
