// Cross-algorithm integration tests: all selection algorithms must agree
// with each other and with the CPU references on identical datasets, and
// the simulated performance must reproduce the paper's headline
// architectural shapes (Fig. 8).

#include <gtest/gtest.h>

#include "baselines/bucketselect.hpp"
#include "baselines/cpu_reference.hpp"
#include "baselines/quickselect.hpp"
#include "baselines/radixselect.hpp"
#include "core/sample_select.hpp"
#include "data/distributions.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;

class AllAlgorithmsAgree : public ::testing::TestWithParam<data::Distribution> {};

TEST_P(AllAlgorithmsAgree, OnSameDataset) {
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>({.n = n, .dist = GetParam(), .seed = 61});
    const std::size_t rank = data::random_rank(n, 61);

    const float ref = stats::nth_element_reference(data, rank);
    (void)ref;

    simt::Device d1(simt::arch_v100());
    const auto sample = core::sample_select<float>(d1, data, rank, {});
    simt::Device d2(simt::arch_v100());
    const auto quick = baselines::quick_select<float>(d2, data, rank, {});
    simt::Device d3(simt::arch_v100());
    const auto bucket = baselines::bucket_select<float>(d3, data, rank, {});
    simt::Device d4(simt::arch_v100());
    const auto radix = baselines::radix_select<float>(d4, data, rank, {});
    const auto serial =
        baselines::serial_sample_select<float>(data, rank, 256, 1024, 5);
    const auto cpu = baselines::cpu_nth_element<float>(data, rank);

    // All must land inside the target rank's value interval.
    EXPECT_EQ(stats::rank_error<float>(data, sample.value, rank), 0u);
    EXPECT_EQ(stats::rank_error<float>(data, quick.value, rank), 0u);
    EXPECT_EQ(stats::rank_error<float>(data, bucket.value, rank), 0u);
    EXPECT_EQ(stats::rank_error<float>(data, radix.value, rank), 0u);
    EXPECT_EQ(stats::rank_error<float>(data, serial, rank), 0u);
    EXPECT_EQ(stats::rank_error<float>(data, cpu.value, rank), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, AllAlgorithmsAgree,
                         ::testing::ValuesIn(data::all_distributions()),
                         [](const auto& info) { return to_string(info.param); });

// ---- Fig. 8 headline shapes, asserted as inequalities -----------------------

double select_ns(const simt::ArchSpec& arch, simt::AtomicSpace space, std::size_t n) {
    simt::Device dev(arch);
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 67});
    core::SampleSelectConfig cfg;
    cfg.num_buckets = 256;
    cfg.atomic_space = space;
    return core::sample_select<float>(dev, data, n / 2, cfg).sim_ns;
}

double quick_ns(const simt::ArchSpec& arch, simt::AtomicSpace space, std::size_t n) {
    simt::Device dev(arch);
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 67});
    core::QuickSelectConfig cfg;
    cfg.atomic_space = space;
    return baselines::quick_select<float>(dev, data, n / 2, cfg).sim_ns;
}

TEST(Fig8Shapes, V100SharedBeatsGlobalByALot) {
    // Sec. V-D: sample-s more than 10x faster than sample-g on the V100.
    // The ratio is asymptotic (fixed launch/reduce costs compress it at
    // small n); assert a strong gap at the largest size the test budget
    // allows.
    const std::size_t n = 1 << 22;
    const double shared = select_ns(simt::arch_v100(), simt::AtomicSpace::shared, n);
    const double global = select_ns(simt::arch_v100(), simt::AtomicSpace::global, n);
    EXPECT_GT(global, 6.0 * shared);
}

TEST(Fig8Shapes, K20GlobalBeatsShared) {
    const std::size_t n = 1 << 20;
    const double shared = select_ns(simt::arch_k20xm(), simt::AtomicSpace::shared, n);
    const double global = select_ns(simt::arch_k20xm(), simt::AtomicSpace::global, n);
    EXPECT_GT(shared, global);
}

TEST(Fig8Shapes, V100SampleSelectBeatsQuickSelect) {
    const std::size_t n = 1 << 22;
    const double sample = select_ns(simt::arch_v100(), simt::AtomicSpace::shared, n);
    const double quick = quick_ns(simt::arch_v100(), simt::AtomicSpace::shared, n);
    // "more than twice faster on the V100" holds asymptotically; require a
    // clear win at this size (the bench sweeps show the full-factor gap).
    EXPECT_GT(quick, 1.5 * sample);
}

TEST(Fig8Shapes, ThroughputGrowsWithN) {
    const double small = select_ns(simt::arch_v100(), simt::AtomicSpace::shared, 1 << 14);
    const double large = select_ns(simt::arch_v100(), simt::AtomicSpace::shared, 1 << 20);
    const double tp_small = static_cast<double>(1 << 14) / small;
    const double tp_large = static_cast<double>(1 << 20) / large;
    EXPECT_GT(tp_large, 2.0 * tp_small);  // launch-latency-bound at small n
}

TEST(Fig8Shapes, DoublePrecisionSampleSelectNearSinglePrecision) {
    // Sec. V-D: SampleSelect's throughput in double precision is only
    // slightly below single precision (atomics on 32-bit counters are the
    // bottleneck), while QuickSelect degrades more (memory-bound).
    const std::size_t n = 1 << 20;
    simt::Device df(simt::arch_v100());
    simt::Device dd(simt::arch_v100());
    const auto fdata = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 71});
    const auto ddata = data::generate<double>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 71});
    core::SampleSelectConfig cfg;
    const double tf = core::sample_select<float>(df, fdata, n / 2, cfg).sim_ns;
    const double td = core::sample_select<double>(dd, ddata, n / 2, cfg).sim_ns;
    EXPECT_LT(td, 1.5 * tf);
}

TEST(RobustnessShape, SampleSelectStableOnAdversarialBucketSelectNot) {
    const std::size_t n = 1 << 16;
    const auto uniform = data::generate<double>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 73});
    const auto advers = data::generate<double>(
        {.n = n, .dist = data::Distribution::adversarial_cluster, .seed = 73});

    auto sample_time = [&](const std::vector<double>& d) {
        simt::Device dev(simt::arch_v100());
        return core::sample_select<double>(dev, d, n / 2, {}).sim_ns;
    };
    auto bucket_time = [&](const std::vector<double>& d) {
        simt::Device dev(simt::arch_v100());
        return baselines::bucket_select<double>(dev, d, n / 2, {}).sim_ns;
    };
    const double s_ratio = sample_time(advers) / sample_time(uniform);
    const double b_ratio = bucket_time(advers) / bucket_time(uniform);
    // SampleSelect is comparison-based: insensitive to the value
    // distribution.  BucketSelect degrades by construction.
    EXPECT_LT(s_ratio, 1.6);
    EXPECT_GT(b_ratio, 1.5);
    EXPECT_GT(b_ratio, s_ratio);
}

TEST(SerialReference, AgreesWithDeviceImplementation) {
    const std::size_t n = 1 << 13;
    for (std::size_t d : {std::size_t{1}, std::size_t{16}, std::size_t{0}}) {
        const auto data = data::generate<float>({.n = n,
                                                 .dist = data::Distribution::uniform_distinct,
                                                 .distinct_values = d,
                                                 .seed = 79});
        const std::size_t rank = data::random_rank(n, d + 1);
        simt::Device dev(simt::arch_v100());
        const auto device = core::sample_select<float>(dev, data, rank, {});
        const auto serial = baselines::serial_sample_select<float>(data, rank, 64, 512, 3);
        EXPECT_EQ(stats::rank_error<float>(data, device.value, rank), 0u);
        EXPECT_EQ(stats::rank_error<float>(data, serial, rank), 0u);
    }
}

}  // namespace
