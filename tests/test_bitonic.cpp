// Unit tests for the bitonic sorting network (bitonic/bitonic.hpp).

#include "bitonic/bitonic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/distributions.hpp"

namespace {

using namespace gpusel;

TEST(NextPow2, Values) {
    EXPECT_EQ(bitonic::next_pow2(1), 1u);
    EXPECT_EQ(bitonic::next_pow2(2), 2u);
    EXPECT_EQ(bitonic::next_pow2(3), 4u);
    EXPECT_EQ(bitonic::next_pow2(1000), 1024u);
    EXPECT_EQ(bitonic::next_pow2(1024), 1024u);
}

TEST(NetworkSteps, KnownCounts) {
    EXPECT_EQ(bitonic::network_steps(1), 0);
    EXPECT_EQ(bitonic::network_steps(2), 1);
    EXPECT_EQ(bitonic::network_steps(4), 3);
    EXPECT_EQ(bitonic::network_steps(8), 6);
    EXPECT_EQ(bitonic::network_steps(1024), 55);
}

class BitonicSortSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitonicSortSize, HostNetworkSortsArbitrarySizes) {
    const std::size_t n = GetParam();
    auto v = data::generate<float>({.n = n, .dist = data::Distribution::uniform_real,
                                    .seed = 100 + n});
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    bitonic::sort_network<float>(v);
    EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitonicSortSize,
                         ::testing::Values(1u, 2u, 3u, 5u, 31u, 32u, 33u, 100u, 255u, 256u, 1000u,
                                           1024u, 4095u, 4096u));

TEST(BitonicKernel, SortsOnDevice) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1000;
    auto buf = dev.alloc<float>(n);
    auto v = data::generate<float>({.n = n, .dist = data::Distribution::uniform_real, .seed = 5});
    std::copy(v.begin(), v.end(), buf.data());
    bitonic::sort_on_device<float>(dev, buf.span(), n);
    std::sort(v.begin(), v.end());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(buf[i], v[i]);
}

TEST(BitonicKernel, SortsDuplicatesAndDoubles) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 512;
    auto buf = dev.alloc<double>(n);
    for (std::size_t i = 0; i < n; ++i) buf[i] = static_cast<double>(i % 7);
    bitonic::sort_on_device<double>(dev, buf.span(), n);
    EXPECT_TRUE(std::is_sorted(buf.data(), buf.data() + n));
}

TEST(BitonicKernel, ChargesOneBarrierPerStepPlusLoadSync) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 256;
    auto buf = dev.alloc<float>(n);
    for (std::size_t i = 0; i < n; ++i) buf[i] = static_cast<float>(n - i);
    bitonic::sort_on_device<float>(dev, buf.span(), n);
    const auto& prof = dev.profiles().back();
    const auto steps = static_cast<std::uint64_t>(bitonic::network_steps(256));
    // one barrier after load/pad + one per network step
    EXPECT_EQ(prof.counters.block_barriers, steps + 1);
    // full payload moved in and out
    EXPECT_EQ(prof.counters.global_bytes_read, n * sizeof(float));
    EXPECT_EQ(prof.counters.global_bytes_written, n * sizeof(float));
    // n/2 compare-exchanges per step
    EXPECT_EQ(prof.counters.instructions, steps * (n / 2));
}

TEST(BitonicKernel, RejectsOversizedInput) {
    simt::Device dev(simt::arch_v100());
    auto buf = dev.alloc<float>(bitonic::kMaxSortSize + 1);
    EXPECT_THROW(bitonic::sort_on_device<float>(dev, buf.span(), buf.size()), std::invalid_argument);
}

TEST(BitonicKernel, TrivialSizesNoop) {
    simt::Device dev(simt::arch_v100());
    auto buf = dev.alloc<float>(1);
    buf[0] = 3.0f;
    bitonic::sort_on_device<float>(dev, buf.span(), 1);
    EXPECT_EQ(buf[0], 3.0f);
}

TEST(BatchedBitonic, SortsManySegmentsInOneLaunch) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 10000;
    auto buf = dev.alloc<float>(n);
    auto v = data::generate<float>({.n = n, .dist = data::Distribution::uniform_real, .seed = 9});
    std::copy(v.begin(), v.end(), buf.data());
    // segments of varying length covering [0, n) plus a gap left unsorted
    std::vector<bitonic::Segment> segs{{0, 1000}, {1000, 1}, {1001, 31}, {1032, 4000},
                                       {6000, 4000}};
    dev.clear_profiles();
    bitonic::batched_sort_on_device<float>(dev, buf.span(), segs);
    EXPECT_EQ(dev.launch_count(), 1u);
    for (const auto& s : segs) {
        EXPECT_TRUE(std::is_sorted(buf.data() + s.begin, buf.data() + s.begin + s.length))
            << "segment at " << s.begin;
    }
    // the gap [10000-...] -- here [1032+4000=5032, 6000) -- is untouched
    for (std::size_t i = 5032; i < 6000; ++i) EXPECT_EQ(buf[i], v[i]);
}

TEST(BatchedBitonic, EmptySegmentsNoop) {
    simt::Device dev(simt::arch_v100());
    auto buf = dev.alloc<float>(10);
    bitonic::batched_sort_on_device<float>(dev, buf.span(), {});
    EXPECT_EQ(dev.launch_count(), 0u);
}

TEST(BatchedBitonic, RejectsOversizedOrOutOfRange) {
    simt::Device dev(simt::arch_v100());
    auto buf = dev.alloc<float>(10000);
    EXPECT_THROW(bitonic::batched_sort_on_device<float>(
                     dev, buf.span(), {{0, bitonic::kMaxSortSize + 1}}),
                 std::invalid_argument);
    EXPECT_THROW(bitonic::batched_sort_on_device<float>(dev, buf.span(), {{9999, 2}}),
                 std::invalid_argument);
}

TEST(BitonicHost, AlreadySortedStable) {
    std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8};
    bitonic::sort_network<double>(v);
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(BitonicHost, AllEqual) {
    std::vector<float> v(100, 2.5f);
    bitonic::sort_network<float>(v);
    for (float x : v) EXPECT_EQ(x, 2.5f);
}

}  // namespace
