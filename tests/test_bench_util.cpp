// Tests for the benchmark-harness utilities (bench_util).

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"

namespace {

using namespace gpusel::bench;

TEST(Table, AlignedOutputContainsCells) {
    Table t("demo");
    t.set_header({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22222"});
    std::ostringstream os;
    t.print(os);
    const auto s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22222"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
    Table t("x");
    t.set_header({"a", "b"});
    t.add_row({"1", "2"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Format, Engineering) {
    EXPECT_EQ(fmt_eng(3.21e9, 2), "3.21e+09");
}

TEST(Format, FixedAndPct) {
    EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
    EXPECT_EQ(fmt_pct(0.123456, 2), "12.35%");
}

TEST(EnvSize, DefaultAndOverride) {
    ::unsetenv("GPUSEL_TEST_ENV");
    EXPECT_EQ(env_size("GPUSEL_TEST_ENV", 7), 7u);
    ::setenv("GPUSEL_TEST_ENV", "42", 1);
    EXPECT_EQ(env_size("GPUSEL_TEST_ENV", 7), 42u);
    ::setenv("GPUSEL_TEST_ENV", "junk", 1);
    EXPECT_EQ(env_size("GPUSEL_TEST_ENV", 7), 7u);
    ::unsetenv("GPUSEL_TEST_ENV");
}

TEST(Scale, FromEnvAndSizes) {
    ::setenv("GPUSEL_BENCH_MIN_LOG_N", "10", 1);
    ::setenv("GPUSEL_BENCH_MAX_LOG_N", "14", 1);
    ::setenv("GPUSEL_BENCH_REPS", "5", 1);
    const auto s = Scale::from_env();
    EXPECT_EQ(s.min_log_n, 10u);
    EXPECT_EQ(s.max_log_n, 14u);
    EXPECT_EQ(s.reps, 5u);
    EXPECT_EQ(s.sizes(), (std::vector<std::size_t>{1024, 4096, 16384}));
    EXPECT_EQ(s.sizes(1).size(), 5u);
    ::unsetenv("GPUSEL_BENCH_MIN_LOG_N");
    ::unsetenv("GPUSEL_BENCH_MAX_LOG_N");
    ::unsetenv("GPUSEL_BENCH_REPS");
}

TEST(Scale, ClampsInvertedRange) {
    ::setenv("GPUSEL_BENCH_MIN_LOG_N", "20", 1);
    ::setenv("GPUSEL_BENCH_MAX_LOG_N", "10", 1);
    const auto s = Scale::from_env();
    EXPECT_EQ(s.max_log_n, 20u);
    ::unsetenv("GPUSEL_BENCH_MIN_LOG_N");
    ::unsetenv("GPUSEL_BENCH_MAX_LOG_N");
}

TEST(RepeatNs, AggregatesAllReps) {
    const auto s = repeat_ns(4, [](std::size_t r) { return static_cast<double>(r + 1); });
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Throughput, ElementsPerSecond) {
    EXPECT_DOUBLE_EQ(throughput(1000, 1e9), 1000.0);  // 1000 elements in 1 s
    EXPECT_DOUBLE_EQ(throughput(1, 1.0), 1e9);        // 1 element per ns
}

}  // namespace
