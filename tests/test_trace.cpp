// Tests for profile aggregation and trace export (simt/trace.hpp).

#include "simt/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/sample_select.hpp"
#include "data/distributions.hpp"
#include "simt/device.hpp"

namespace {

using namespace gpusel;

std::vector<simt::KernelProfile> sample_profiles() {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = 1 << 14, .dist = data::Distribution::uniform_real, .seed = 3});
    (void)core::sample_select<float>(dev, data, 1 << 13, {});
    return dev.profiles();
}

TEST(AggregateByName, GroupsAndSums) {
    const auto profiles = sample_profiles();
    const auto by = simt::aggregate_by_name(profiles);
    EXPECT_TRUE(by.contains("sample"));
    EXPECT_TRUE(by.contains("count"));
    EXPECT_TRUE(by.contains("filter"));
    std::uint64_t launches = 0;
    double total = 0;
    for (const auto& [name, a] : by) {
        launches += a.launches;
        total += a.total_ns;
    }
    EXPECT_EQ(launches, profiles.size());
    double direct = 0;
    for (const auto& p : profiles) direct += p.sim_ns;
    EXPECT_DOUBLE_EQ(total, direct);
}

TEST(ChromeTrace, ValidJsonShape) {
    const auto profiles = sample_profiles();
    std::ostringstream os;
    simt::write_chrome_trace(os, profiles);
    const auto s = os.str();
    EXPECT_TRUE(s.starts_with("{\"traceEvents\":["));
    EXPECT_TRUE(s.ends_with("]}"));
    // one event per profile
    std::size_t events = 0;
    for (std::size_t pos = 0; (pos = s.find("\"ph\":\"X\"", pos)) != std::string::npos; ++pos) {
        ++events;
    }
    EXPECT_EQ(events, profiles.size());
    // balanced braces (cheap well-formedness check)
    long depth = 0;
    for (char c : s) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(ChromeTrace, EmptyProfiles) {
    std::ostringstream os;
    simt::write_chrome_trace(os, {});
    EXPECT_EQ(os.str(), "{\"traceEvents\":[]}");
}

TEST(Timeline, ListsKernelsSortedByTime) {
    const auto profiles = sample_profiles();
    const auto text = simt::format_timeline(profiles);
    EXPECT_NE(text.find("count"), std::string::npos);
    EXPECT_NE(text.find("%"), std::string::npos);
    // the first listed kernel carries the largest share
    const auto by = simt::aggregate_by_name(profiles);
    double max_ns = 0;
    std::string max_name;
    for (const auto& [name, a] : by) {
        if (a.total_ns > max_ns) {
            max_ns = a.total_ns;
            max_name = name;
        }
    }
    EXPECT_EQ(text.find(max_name), 0u);
}

TEST(Timeline, EmptyIsEmpty) {
    EXPECT_TRUE(simt::format_timeline({}).empty());
}

}  // namespace
