// Selection-as-a-service tests (docs/service.md): correctness of every
// request kind against the CPU reference, admission control (bounded-queue
// shedding, per-tenant fairness, up-front deadline rejection), graceful
// degradation under queue delay, the per-backend circuit breaker's
// trip / half-open / recovery cycle, clean drain and shutdown semantics,
// concurrent submission against the dispatcher thread, and a seeded
// overload + fault soak in which every admitted request must resolve --
// the service never hangs a future.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "data/distributions.hpp"
#include "server/loadgen.hpp"
#include "server/service.hpp"
#include "simt/arch.hpp"
#include "simt/device.hpp"
#include "simt/fault.hpp"
#include "simt/topology.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;
using server::Request;
using server::RequestKind;
using server::Response;
using server::ResponseMode;
using server::SelectServer;
using server::ServerConfig;

std::vector<float> dataset(std::size_t n, std::uint64_t seed,
                           data::Distribution dist = data::Distribution::uniform_real) {
    return data::generate<float>({n, dist, 0, seed});
}

// ---- correctness against the CPU reference ----------------------------------

TEST(Server, SelectMatchesReference) {
    simt::Device dev(simt::arch_v100());
    SelectServer srv(dev, {});
    const auto data = dataset(65536, 1);
    for (const std::size_t rank : {std::size_t{0}, std::size_t{12345}, std::size_t{65535}}) {
        Request req;
        req.data = data;
        req.rank = rank;
        auto fut = srv.submit(req);
        ASSERT_TRUE(srv.pump());
        const Response r = fut.get();
        ASSERT_TRUE(r.status.ok()) << r.status.message;
        EXPECT_EQ(r.mode, ResponseMode::exact);
        EXPECT_EQ(stats::rank_error<float>(data, r.value, rank), 0u);
        EXPECT_GE(r.finish_ns, r.start_ns);
        EXPECT_GE(r.start_ns, r.arrival_ns);
    }
}

TEST(Server, TopKMatchesReference) {
    simt::Device dev(simt::arch_v100());
    SelectServer srv(dev, {});
    const auto data = dataset(32768, 2);
    Request req;
    req.kind = RequestKind::topk;
    req.data = data;
    req.k = 100;
    auto fut = srv.submit(req);
    ASSERT_TRUE(srv.pump());
    const Response r = fut.get();
    ASSERT_TRUE(r.status.ok()) << r.status.message;
    ASSERT_EQ(r.values.size(), 100u);
    std::vector<float> expect = data;
    std::nth_element(expect.begin(), expect.begin() + 99, expect.end(), std::greater<>());
    EXPECT_EQ(r.value, expect[99]);  // threshold = 100th largest
    std::vector<float> got = r.values;
    std::sort(got.begin(), got.end(), std::greater<>());
    expect.resize(100);
    std::sort(expect.begin(), expect.end(), std::greater<>());
    EXPECT_EQ(got, expect);
}

TEST(Server, ArgselectReturnsKeyAndIndex) {
    simt::Device dev(simt::arch_v100());
    SelectServer srv(dev, {});
    const auto data = dataset(16384, 3);
    Request req;
    req.kind = RequestKind::argselect;
    req.data = data;
    req.rank = 4321;
    auto fut = srv.submit(req);
    ASSERT_TRUE(srv.pump());
    const Response r = fut.get();
    ASSERT_TRUE(r.status.ok()) << r.status.message;
    EXPECT_EQ(stats::rank_error<float>(data, r.value, 4321), 0u);
    ASSERT_LT(r.index, data.size());
    EXPECT_EQ(data[r.index], r.value);
}

TEST(Server, QuantileMapsToRank) {
    simt::Device dev(simt::arch_v100());
    SelectServer srv(dev, {});
    const auto data = dataset(10000, 4);
    Request req;
    req.kind = RequestKind::quantile;
    req.data = data;
    req.q = 0.9;
    auto fut = srv.submit(req);
    ASSERT_TRUE(srv.pump());
    const Response r = fut.get();
    ASSERT_TRUE(r.status.ok()) << r.status.message;
    const std::size_t rank = core::try_quantile_rank(data.size(), 0.9,
                                                     core::QuantileMethod::nearest)
                                 .take_or_throw();
    EXPECT_EQ(stats::rank_error<float>(data, r.value, rank), 0u);
}

TEST(Server, ApproxRequestReportsBoundedRankError) {
    simt::Device dev(simt::arch_v100());
    SelectServer srv(dev, {});
    const auto data = dataset(65536, 5);
    Request req;
    req.data = data;
    req.rank = 30000;
    req.approx = true;
    auto fut = srv.submit(req);
    ASSERT_TRUE(srv.pump());
    const Response r = fut.get();
    ASSERT_TRUE(r.status.ok()) << r.status.message;
    EXPECT_EQ(r.mode, ResponseMode::approx);
    EXPECT_EQ(stats::rank_error<float>(data, r.value, 30000), r.rank_error);
    EXPECT_LE(r.rank_error, r.rank_error_bound);
}

TEST(Server, BatchCoalescesMultipleTenants) {
    simt::Device dev(simt::arch_v100());
    ServerConfig cfg;
    cfg.max_batch = 8;
    SelectServer srv(dev, cfg);
    const auto data = dataset(16384, 6);
    std::vector<std::future<Response>> futs;
    for (int t = 0; t < 6; ++t) {
        Request req;
        req.data = data;
        req.rank = static_cast<std::size_t>(1000 * (t + 1));
        req.tenant = t;
        futs.push_back(srv.submit(req));
    }
    ASSERT_TRUE(srv.pump());  // one round serves all six
    EXPECT_EQ(srv.queue_depth(), 0u);
    for (int t = 0; t < 6; ++t) {
        const Response r = futs[static_cast<std::size_t>(t)].get();
        ASSERT_TRUE(r.status.ok()) << r.status.message;
        EXPECT_EQ(stats::rank_error<float>(data, r.value,
                                           static_cast<std::size_t>(1000 * (t + 1))),
                  0u);
    }
}

// Oversized requests peel off to the configured multi-device shard group
// (docs/sharding.md) and stay exact; requests under the threshold keep the
// single-device batch path.  Argselect never routes (key-only shard layer).
TEST(Server, OversizedRequestsRouteToShardGroup) {
    simt::Device dev(simt::arch_v100());
    simt::TopologySpec spec;
    spec.num_devices = 2;
    spec.arch = simt::arch_v100();
    spec.mem_capacity_bytes = 64 * 1024;  // tiny modeled HBM -> real sharding
    simt::DeviceGroup group(spec);
    ServerConfig cfg;
    cfg.shard_group = &group;
    cfg.shard_threshold_elems = 8192;
    SelectServer srv(dev, cfg);
    const auto big = dataset(40000, 21);

    Request req;  // oversized exact select
    req.data = big;
    req.rank = 12345;
    auto fut = srv.submit(req);
    ASSERT_TRUE(srv.pump());
    Response r = fut.get();
    ASSERT_TRUE(r.status.ok()) << r.status.message;
    EXPECT_EQ(r.mode, ResponseMode::exact);
    EXPECT_EQ(stats::rank_error<float>(big, r.value, 12345), 0u);
    EXPECT_EQ(srv.metrics().sharded, 1u);
    EXPECT_GT(group.total_link_bytes(), 0u);

    Request tk;  // oversized top-k
    tk.kind = RequestKind::topk;
    tk.data = big;
    tk.k = 33;
    fut = srv.submit(tk);
    ASSERT_TRUE(srv.pump());
    r = fut.get();
    ASSERT_TRUE(r.status.ok()) << r.status.message;
    ASSERT_EQ(r.values.size(), 33u);
    std::vector<float> expect = big;
    std::nth_element(expect.begin(), expect.begin() + 32, expect.end(), std::greater<>());
    EXPECT_EQ(r.value, expect[32]);
    EXPECT_EQ(srv.metrics().sharded, 2u);

    Request ap;  // oversized approx select: bounded error, still sharded
    ap.data = big;
    ap.rank = 100;
    ap.approx = true;
    fut = srv.submit(ap);
    ASSERT_TRUE(srv.pump());
    r = fut.get();
    ASSERT_TRUE(r.status.ok()) << r.status.message;
    EXPECT_EQ(r.mode, ResponseMode::approx);
    EXPECT_LE(stats::rank_error<float>(big, r.value, 100), r.rank_error_bound);
    EXPECT_EQ(srv.metrics().sharded, 3u);

    Request sm;  // under the threshold: single-device batch path
    sm.data = dataset(1024, 22);
    sm.rank = 77;
    fut = srv.submit(sm);
    ASSERT_TRUE(srv.pump());
    r = fut.get();
    ASSERT_TRUE(r.status.ok()) << r.status.message;
    EXPECT_EQ(stats::rank_error<float>(sm.data, r.value, 77), 0u);
    EXPECT_EQ(srv.metrics().sharded, 3u);
}

// ---- typed rejections --------------------------------------------------------

TEST(Server, InvalidRequestsRejectTyped) {
    simt::Device dev(simt::arch_v100());
    SelectServer srv(dev, {});
    const auto data = dataset(1024, 7);

    Request empty;
    EXPECT_EQ(srv.submit(empty).get().status.code, core::SelectError::empty_input);

    Request bad_rank;
    bad_rank.data = data;
    bad_rank.rank = 1024;
    EXPECT_EQ(srv.submit(bad_rank).get().status.code, core::SelectError::rank_out_of_range);

    Request bad_k;
    bad_k.kind = RequestKind::topk;
    bad_k.data = data;
    bad_k.k = 0;
    EXPECT_EQ(srv.submit(bad_k).get().status.code, core::SelectError::rank_out_of_range);

    Request bad_q;
    bad_q.kind = RequestKind::quantile;
    bad_q.data = data;
    bad_q.q = 1.5;
    EXPECT_FALSE(srv.submit(bad_q).get().status.ok());

    Request approx_topk;
    approx_topk.kind = RequestKind::topk;
    approx_topk.data = data;
    approx_topk.k = 10;
    approx_topk.approx = true;
    EXPECT_EQ(srv.submit(approx_topk).get().status.code,
              core::SelectError::invalid_argument);

    // Rejections resolve immediately: nothing reached the queue.
    EXPECT_EQ(srv.queue_depth(), 0u);
}

TEST(Server, ShedsWhenGlobalQueueFull) {
    simt::Device dev(simt::arch_v100());
    ServerConfig cfg;
    cfg.queue_capacity = 4;
    cfg.tenant_queue_capacity = 4;
    SelectServer srv(dev, cfg);
    const auto data = dataset(4096, 8);
    std::vector<std::future<Response>> futs;
    for (int i = 0; i < 8; ++i) {
        Request req;
        req.data = data;
        req.rank = 100;
        req.tenant = i;  // spread tenants so the global bound is what trips
        futs.push_back(srv.submit(req));
    }
    int shed = 0;
    while (srv.pump()) {
    }
    for (auto& f : futs) {
        const Response r = f.get();
        if (!r.status.ok()) {
            EXPECT_EQ(r.status.code, core::SelectError::overloaded);
            ++shed;
        }
    }
    EXPECT_EQ(shed, 4);
    EXPECT_EQ(srv.metrics().shed, 4u);
}

TEST(Server, TenantQueueBoundsIsolateTenants) {
    simt::Device dev(simt::arch_v100());
    ServerConfig cfg;
    cfg.queue_capacity = 64;
    cfg.tenant_queue_capacity = 2;
    SelectServer srv(dev, cfg);
    const auto data = dataset(4096, 9);
    // Tenant 0 floods; its overflow sheds without consuming global slots.
    std::vector<std::future<Response>> flood;
    for (int i = 0; i < 6; ++i) {
        Request req;
        req.data = data;
        req.rank = 1;
        req.tenant = 0;
        flood.push_back(srv.submit(req));
    }
    // Tenant 1 still gets in.
    Request other;
    other.data = data;
    other.rank = 2;
    other.tenant = 1;
    auto ok_fut = srv.submit(other);
    while (srv.pump()) {
    }
    int shed = 0;
    for (auto& f : flood) {
        if (!f.get().status.ok()) ++shed;
    }
    EXPECT_EQ(shed, 4);  // 6 offered, 2 per-tenant slots
    EXPECT_TRUE(ok_fut.get().status.ok());
}

TEST(Server, FairPickupAlternatesTenants) {
    simt::Device dev(simt::arch_v100());
    ServerConfig cfg;
    cfg.max_batch = 2;  // one round cannot serve everything
    SelectServer srv(dev, cfg);
    const auto data = dataset(4096, 10);
    // Tenant 0 queues three requests, tenant 1 queues one; the first round
    // must include tenant 1 (round-robin), not three of tenant 0.
    std::vector<std::future<Response>> t0;
    for (int i = 0; i < 3; ++i) {
        Request req;
        req.data = data;
        req.rank = 10;
        req.tenant = 0;
        t0.push_back(srv.submit(req));
    }
    Request r1;
    r1.data = data;
    r1.rank = 20;
    r1.tenant = 1;
    auto f1 = srv.submit(r1);
    ASSERT_TRUE(srv.pump());
    // After one round of max_batch=2, tenant 1 must already be resolved.
    EXPECT_EQ(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_TRUE(f1.get().status.ok());
    while (srv.pump()) {
    }
    for (auto& f : t0) EXPECT_TRUE(f.get().status.ok());
}

// ---- deadlines ---------------------------------------------------------------

TEST(Server, InfeasibleDeadlineRejectedUpFront) {
    simt::Device dev(simt::arch_v100());
    SelectServer srv(dev, {});
    const auto data = dataset(65536, 11);
    Request req;
    req.data = data;
    req.rank = 100;
    req.deadline_ns = 1.0;  // nothing finishes in 1 simulated ns
    auto fut = srv.submit(req);
    const Response r = fut.get();  // resolved at admission, no pump needed
    EXPECT_EQ(r.status.code, core::SelectError::deadline_exceeded);
    EXPECT_EQ(srv.metrics().deadline_rejected, 1u);
    EXPECT_EQ(srv.queue_depth(), 0u);
}

TEST(Server, GenerousDeadlineAdmitsAndCompletes) {
    simt::Device dev(simt::arch_v100());
    SelectServer srv(dev, {});
    const auto data = dataset(65536, 12);
    Request req;
    req.data = data;
    req.rank = 100;
    req.deadline_ns = 1e9;
    auto fut = srv.submit(req);
    ASSERT_TRUE(srv.pump());
    const Response r = fut.get();
    ASSERT_TRUE(r.status.ok()) << r.status.message;
    EXPECT_LE(r.latency_ns(), 1e9);
}

TEST(Server, DeadlineExpiredInQueueResolvesTyped) {
    simt::Device dev(simt::arch_v100());
    ServerConfig cfg;
    cfg.admit_deadline_check = false;  // let it through; pickup must catch it
    cfg.max_batch = 1;
    SelectServer srv(dev, cfg);
    const auto data = dataset(65536, 13);
    // First request occupies the device long enough that the second's tiny
    // deadline expires while it waits in the queue.
    Request first;
    first.data = data;
    first.rank = 1;
    auto f0 = srv.submit(first);
    Request second;
    second.data = data;
    second.rank = 2;
    second.deadline_ns = 10.0;
    auto f1 = srv.submit(second);
    while (srv.pump()) {
    }
    EXPECT_TRUE(f0.get().status.ok());
    EXPECT_EQ(f1.get().status.code, core::SelectError::deadline_exceeded);
}

// ---- graceful degradation ----------------------------------------------------

TEST(Server, DegradesUnderQueueDelay) {
    simt::Device dev(simt::arch_v100());
    ServerConfig cfg;
    cfg.max_batch = 1;
    cfg.degrade_queue_delay_ns = 1000.0;  // tiny threshold: second round trips it
    SelectServer srv(dev, cfg);
    const auto data = dataset(65536, 14);
    Request first;
    first.data = data;
    first.rank = 1000;
    auto f0 = srv.submit(first);
    Request second;
    second.data = data;
    second.rank = 30000;
    auto f1 = srv.submit(second);
    while (srv.pump()) {
    }
    EXPECT_TRUE(f0.get().status.ok());
    const Response r1 = f1.get();
    ASSERT_TRUE(r1.status.ok()) << r1.status.message;
    EXPECT_EQ(r1.mode, ResponseMode::degraded);
    EXPECT_EQ(stats::rank_error<float>(data, r1.value, 30000), r1.rank_error);
    EXPECT_LE(r1.rank_error, r1.rank_error_bound);
    EXPECT_EQ(srv.metrics().degraded, 1u);
}

TEST(Server, AllowDegradeFalseStaysExact) {
    simt::Device dev(simt::arch_v100());
    ServerConfig cfg;
    cfg.max_batch = 1;
    cfg.degrade_queue_delay_ns = 1000.0;
    SelectServer srv(dev, cfg);
    const auto data = dataset(65536, 15);
    Request first;
    first.data = data;
    first.rank = 1;
    auto f0 = srv.submit(first);
    Request second;
    second.data = data;
    second.rank = 30000;
    second.allow_degrade = false;
    auto f1 = srv.submit(second);
    while (srv.pump()) {
    }
    EXPECT_TRUE(f0.get().status.ok());
    const Response r1 = f1.get();
    ASSERT_TRUE(r1.status.ok()) << r1.status.message;
    EXPECT_EQ(r1.mode, ResponseMode::exact);
    EXPECT_EQ(stats::rank_error<float>(data, r1.value, 30000), 0u);
}

// ---- circuit breaker ---------------------------------------------------------

TEST(Server, BreakerTripsQuarantinesAndRecovers) {
    simt::Device dev(simt::arch_v100());
    ServerConfig cfg;
    cfg.breaker.failure_threshold = 2;
    cfg.breaker.initial_backoff_ns = 1e4;
    SelectServer srv(dev, cfg);
    const auto data = dataset(8192, 16);

    // Hard launch faults: every round fails terminally until cleared.
    simt::FaultSpec faults;
    faults.seed = 99;
    faults.launch_rate = 1.0;
    faults.launch_burst = 64;
    dev.set_faults(faults);
    for (int i = 0; i < 2; ++i) {
        Request req;
        req.data = data;
        req.rank = 50;
        auto fut = srv.submit(req);
        srv.pump();
        EXPECT_FALSE(fut.get().status.ok());
    }
    const std::uint32_t tripped = dev.backend_quarantine();
    EXPECT_NE(tripped, 0u) << "two consecutive faulted rounds must trip a breaker";

    // Faults stop; the next rounds (after the backoff window) half-open
    // probe and recover -- the quarantine mask must clear again.
    dev.clear_faults();
    // A few fault-free rounds: first the backoff window expires (open ->
    // half_open, quarantine bit clears), then the planner's next pick of
    // the backend is the half-open probe whose success closes it.
    for (int i = 0; i < 8; ++i) {
        Request req;
        req.data = data;
        req.rank = 60;
        auto fut = srv.submit(req);
        srv.pump();
        const Response r = fut.get();
        EXPECT_TRUE(r.status.ok()) << r.status.message;
    }
    EXPECT_EQ(dev.backend_quarantine(), 0u) << "breaker must recover after faults stop";
    using core::BackendKind;
    for (const BackendKind k :
         {BackendKind::sample, BackendKind::radix, BackendKind::bitonic}) {
        if ((tripped & core::backend_bit(k)) != 0u) {
            EXPECT_EQ(srv.breakers().of(k).state(), server::BreakerState::closed)
                << "tripped breaker must close after a successful probe";
        }
    }
}

// ---- drain / shutdown --------------------------------------------------------

TEST(Server, DrainCompletesAdmittedAndShedsNew) {
    simt::Device dev(simt::arch_v100());
    SelectServer srv(dev, {});
    const auto data = dataset(8192, 17);
    std::vector<std::future<Response>> futs;
    for (int i = 0; i < 5; ++i) {
        Request req;
        req.data = data;
        req.rank = static_cast<std::size_t>(i);
        futs.push_back(srv.submit(req));
    }
    srv.drain();
    EXPECT_EQ(srv.queue_depth(), 0u);
    for (auto& f : futs) EXPECT_TRUE(f.get().status.ok());
    // Draining: new submissions shed immediately.
    Request late;
    late.data = data;
    late.rank = 1;
    EXPECT_EQ(srv.submit(late).get().status.code, core::SelectError::overloaded);
    // reopen() restores admission.
    srv.reopen();
    Request again;
    again.data = data;
    again.rank = 1;
    auto f = srv.submit(again);
    ASSERT_TRUE(srv.pump());
    EXPECT_TRUE(f.get().status.ok());
}

TEST(Server, DestructorResolvesQueuedFutures) {
    simt::Device dev(simt::arch_v100());
    const auto data = dataset(8192, 18);
    std::vector<std::future<Response>> futs;
    {
        SelectServer srv(dev, {});
        for (int i = 0; i < 3; ++i) {
            Request req;
            req.data = data;
            req.rank = 7;
            futs.push_back(srv.submit(req));
        }
        // No pump: the destructor must still resolve every future.
    }
    for (auto& f : futs) {
        const Response r = f.get();
        EXPECT_EQ(r.status.code, core::SelectError::overloaded);
    }
}

TEST(Server, PumpUntilHonorsLimit) {
    simt::Device dev(simt::arch_v100());
    SelectServer srv(dev, {});
    const auto data = dataset(8192, 19);
    Request req;
    req.data = data;
    req.rank = 5;
    req.arrival_ns = 1e6;
    auto fut = srv.submit(req);
    // The round would start at the arrival (1e6); an earlier limit must
    // refuse to run it.
    EXPECT_FALSE(srv.pump_until(0.5e6));
    EXPECT_EQ(srv.queue_depth(), 1u);
    EXPECT_TRUE(srv.pump_until(2e6));
    EXPECT_TRUE(fut.get().status.ok());
}

// ---- dispatcher thread -------------------------------------------------------

TEST(Server, ConcurrentSubmitAgainstDispatcher) {
    simt::Device dev(simt::arch_v100());
    ServerConfig cfg;
    cfg.queue_capacity = 1024;
    cfg.tenant_queue_capacity = 256;
    SelectServer srv(dev, cfg);
    const auto data = dataset(16384, 20);
    srv.start();
    constexpr int kThreads = 4;
    constexpr int kPerThread = 25;
    std::vector<std::vector<std::future<Response>>> futs(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                Request req;
                req.data = data;
                req.rank = static_cast<std::size_t>(t * 1000 + i);
                req.tenant = t;
                futs[static_cast<std::size_t>(t)].push_back(srv.submit(req));
            }
        });
    }
    for (auto& th : threads) th.join();
    srv.stop();  // drains the queue before returning
    std::size_t completed = 0;
    for (auto& per_thread : futs) {
        for (auto& f : per_thread) {
            const Response r = f.get();
            ASSERT_TRUE(r.status.ok()) << r.status.message;
            ++completed;
        }
    }
    EXPECT_EQ(completed, static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_EQ(srv.metrics().completed, completed);
}

// ---- loadgen -----------------------------------------------------------------

TEST(Server, LoadgenNominalCompletesEverything) {
    simt::Device dev(simt::arch_v100());
    server::LoadgenConfig lcfg;
    lcfg.rate_rps = 500.0;
    lcfg.requests = 60;
    lcfg.n = 8192;
    const server::LoadgenResult r = server::run_loadgen(dev, {}, lcfg);
    EXPECT_EQ(r.completed, r.offered);
    EXPECT_EQ(r.shed, 0u);
    EXPECT_GT(r.p50_ns, 0.0);
    EXPECT_GE(r.p99_ns, r.p50_ns);
    EXPECT_GE(r.p999_ns, r.p99_ns);
}

TEST(Server, LoadgenOverloadShedsNotHangs) {
    simt::Device dev(simt::arch_v100());
    ServerConfig scfg;
    scfg.queue_capacity = 8;
    scfg.tenant_queue_capacity = 4;
    server::LoadgenConfig lcfg;
    lcfg.rate_rps = 1e6;  // far past capacity
    lcfg.requests = 120;
    lcfg.n = 16384;
    const server::LoadgenResult r = server::run_loadgen(dev, scfg, lcfg);
    EXPECT_GT(r.shed, 0u) << "overload must shed, not queue unboundedly";
    EXPECT_EQ(r.offered, r.completed + r.shed + r.deadline_rejected + r.deadline_aborted +
                             r.failed);
}

// ---- seeded overload + fault soak -------------------------------------------
// Scenario grid: (request mix x fault schedule x overload burst) as a
// deterministic function of the scenario index.  Every admitted request
// must resolve (result or typed error), drain must finish the in-flight
// work, and after the faults stop the breakers must recover.

std::size_t soak_scenarios() {
    if (const char* env = std::getenv("GPUSEL_SOAK_SCENARIOS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    return 1000;
}

TEST(ServerSoak, EveryAdmittedRequestResolves) {
    const std::size_t scenarios = soak_scenarios();
    const auto base = dataset(4096, 21);
    const auto skewed = dataset(4096, 22, data::Distribution::adversarial_cluster);
    std::uint64_t resolved = 0, completed = 0, typed_errors = 0;

    for (std::size_t s = 0; s < scenarios; ++s) {
        simt::Device dev(simt::arch_v100());
        ServerConfig cfg;
        cfg.queue_capacity = 4 + s % 13;
        cfg.tenant_queue_capacity = 2 + s % 5;
        cfg.max_batch = 1 + s % 7;
        cfg.degrade_queue_delay_ns = (s % 3 == 0) ? 5e3 : 0.0;
        cfg.default_deadline_ns = (s % 4 == 0) ? 5e5 : 0.0;
        cfg.breaker.failure_threshold = 2;
        cfg.breaker.initial_backoff_ns = 1e4;
        SelectServer srv(dev, cfg);

        // Scenario fault schedule: off / alloc / launch / both, bursty.
        simt::FaultSpec faults;
        faults.seed = 31 * s + 7;
        switch (s % 4) {
            case 1: faults.alloc_rate = 0.05; break;
            case 2: faults.launch_rate = 0.05; break;
            case 3:
                faults.alloc_rate = 0.03;
                faults.launch_rate = 0.03;
                faults.alloc_burst = 3;
                break;
            default: break;
        }
        if (faults.any()) dev.set_faults(faults);

        // Overload burst: a clump of arrivals at the same instant, mixed
        // kinds and tenants, some with deadlines.
        const std::size_t burst = 3 + s % 9;
        std::vector<std::future<Response>> futs;
        futs.reserve(burst);
        for (std::size_t i = 0; i < burst; ++i) {
            Request req;
            req.data = (s + i) % 3 == 0 ? std::span<const float>(skewed)
                                        : std::span<const float>(base);
            req.tenant = static_cast<int>(i % 3);
            req.rank = (97 * (s + i)) % 4096;
            switch ((s + i) % 5) {
                case 0: req.kind = RequestKind::topk; req.k = 1 + req.rank % 32; break;
                case 1: req.kind = RequestKind::argselect; break;
                case 2:
                    req.kind = RequestKind::quantile;
                    req.q = static_cast<double>(req.rank) / 4096.0;
                    break;
                case 3: req.approx = true; break;
                default: break;
            }
            if ((s + i) % 6 == 0) req.deadline_ns = 2e5;
            futs.push_back(srv.submit(req));
            if (i % 2 == 1) srv.pump();  // interleave rounds with arrivals
        }

        // Faults stop; drain must finish every in-flight request and the
        // breakers must be recoverable.
        dev.clear_faults();
        srv.drain();
        ASSERT_EQ(srv.queue_depth(), 0u) << "scenario " << s;
        for (auto& f : futs) {
            ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
                << "hung request in scenario " << s;
            const Response r = f.get();
            ++resolved;
            if (r.status.ok()) {
                ++completed;
            } else {
                ++typed_errors;
                EXPECT_FALSE(r.status.message.empty()) << "scenario " << s;
            }
        }

        // Breaker recovery: pump fault-free work until the quarantine mask
        // clears (bounded by the backoff ladder).
        if (dev.backend_quarantine() != 0u) {
            srv.reopen();
            for (int probe = 0; probe < 16 && dev.backend_quarantine() != 0u; ++probe) {
                Request req;
                req.data = base;
                req.rank = 64;
                auto f = srv.submit(req);
                srv.pump();
                f.get();
            }
            EXPECT_EQ(dev.backend_quarantine(), 0u)
                << "breaker failed to recover in scenario " << s;
        }
    }
    // Sanity on the grid itself: work actually ran and faults actually bit.
    EXPECT_GT(completed, 0u);
    EXPECT_GT(typed_errors, 0u);
    EXPECT_EQ(resolved, completed + typed_errors);
    RecordProperty("scenarios", static_cast<int>(scenarios));
    RecordProperty("resolved", static_cast<int>(resolved));
}

}  // namespace
