// Tests for multi-rank selection (future-work extension, Sec. VI).

#include "core/multiselect.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/distributions.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;

TEST(MultiSelect, EmptyRanksGiveEmptyResult) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{1, 2, 3};
    const auto res = core::multi_select<float>(dev, data, {}, {});
    EXPECT_TRUE(res.values.empty());
}

TEST(MultiSelect, SingleRankMatchesReference) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 3});
    const std::vector<std::size_t> ranks{n / 2};
    const auto res = core::multi_select<float>(dev, data, ranks, {});
    ASSERT_EQ(res.values.size(), 1u);
    EXPECT_EQ(stats::rank_error<float>(data, res.values[0], n / 2), 0u);
}

TEST(MultiSelect, QuartilesOfUniformData) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 15;
    const auto data = data::generate<double>(
        {.n = n, .dist = data::Distribution::normal, .seed = 5});
    const std::vector<std::size_t> ranks{n / 4, n / 2, 3 * n / 4};
    const auto res = core::multi_select<double>(dev, data, ranks, {});
    ASSERT_EQ(res.values.size(), 3u);
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        EXPECT_EQ(stats::rank_error<double>(data, res.values[i], ranks[i]), 0u);
    }
    EXPECT_LE(res.values[0], res.values[1]);
    EXPECT_LE(res.values[1], res.values[2]);
}

TEST(MultiSelect, UnsortedRanksPreserveOutputOrder) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 13;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::exponential, .seed = 7});
    const std::vector<std::size_t> ranks{n - 1, 0, n / 2};
    const auto res = core::multi_select<float>(dev, data, ranks, {});
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        EXPECT_EQ(stats::rank_error<float>(data, res.values[i], ranks[i]), 0u);
    }
    EXPECT_GE(res.values[0], res.values[2]);  // max >= median
    EXPECT_LE(res.values[1], res.values[2]);  // min <= median
}

TEST(MultiSelect, ManyRanksAcrossDuplicates) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>({.n = n,
                                             .dist = data::Distribution::uniform_distinct,
                                             .distinct_values = 128,
                                             .seed = 9});
    std::vector<std::size_t> ranks;
    for (std::size_t i = 0; i < 16; ++i) ranks.push_back(i * n / 16);
    const auto res = core::multi_select<float>(dev, data, ranks, {});
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        EXPECT_EQ(stats::rank_error<float>(data, res.values[i], ranks[i]), 0u) << i;
    }
}

TEST(MultiSelect, SharedWorkCheaperThanRepeatedSelect) {
    // Selecting 9 deciles in one tree must cost less simulated time than 9
    // independent full selections.
    const std::size_t n = 1 << 16;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 11});
    std::vector<std::size_t> ranks;
    for (std::size_t i = 1; i <= 9; ++i) ranks.push_back(i * n / 10);

    simt::Device multi_dev(simt::arch_v100());
    const auto multi = core::multi_select<float>(multi_dev, data, ranks, {});

    simt::Device single_dev(simt::arch_v100());
    double single_total = 0;
    for (std::size_t r : ranks) {
        const std::vector<std::size_t> one{r};
        single_total += core::multi_select<float>(single_dev, data, one, {}).sim_ns;
    }
    EXPECT_LT(multi.sim_ns, single_total * 0.5);
}

TEST(MultiSelect, OutOfRangeRankThrows) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{1, 2, 3};
    const std::vector<std::size_t> ranks{3};
    EXPECT_THROW((void)core::multi_select<float>(dev, data, ranks, {}), std::out_of_range);
}

}  // namespace
