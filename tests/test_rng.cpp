// Unit tests for the deterministic RNG substrate (data/rng.hpp).

#include "data/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace {

using gpusel::data::SplitMix64;
using gpusel::data::Xoshiro256;

TEST(SplitMix64, DeterministicAcrossInstances) {
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
    SplitMix64 a(1);
    SplitMix64 b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownFirstValue) {
    // Reference value of splitmix64(seed=0) from the published algorithm.
    SplitMix64 sm(0);
    EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

TEST(Xoshiro256, Deterministic) {
    Xoshiro256 a(7);
    Xoshiro256 b(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Xoshiro256, UniformIsInUnitInterval) {
    Xoshiro256 rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Xoshiro256, UniformMeanRoughlyHalf) {
    Xoshiro256 rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BoundedStaysInBound) {
    Xoshiro256 rng(5);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 1000; ++i) {
            EXPECT_LT(rng.bounded(bound), bound);
        }
    }
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
    Xoshiro256 rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rng.bounded(1), 0u);
    }
}

TEST(Xoshiro256, BoundedCoversSmallRange) {
    Xoshiro256 rng(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, BoundedRoughlyUniform) {
    Xoshiro256 rng(17);
    std::vector<int> hist(16, 0);
    const int n = 160000;
    for (int i = 0; i < n; ++i) ++hist[rng.bounded(16)];
    for (int h : hist) {
        EXPECT_NEAR(h, n / 16, n / 16 / 5);  // within 20%
    }
}

}  // namespace
