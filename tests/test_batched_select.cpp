// Tests for batched multi-sequence selection (core/batched_select.hpp).

#include "core/batched_select.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "data/distributions.hpp"
#include "data/rng.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;

struct Batch {
    std::vector<float> flat;
    std::vector<std::size_t> offsets{0};
    std::vector<std::size_t> ranks;

    void add(std::vector<float> seq, std::size_t rank) {
        flat.insert(flat.end(), seq.begin(), seq.end());
        offsets.push_back(flat.size());
        ranks.push_back(rank);
    }
};

Batch random_batch(std::size_t sequences, std::size_t max_len, std::uint64_t seed) {
    data::Xoshiro256 rng(seed);
    Batch b;
    for (std::size_t s = 0; s < sequences; ++s) {
        const std::size_t len = 1 + rng.bounded(max_len);
        std::vector<float> seq(len);
        for (auto& x : seq) x = static_cast<float>(rng.uniform() * 1000.0);
        b.add(std::move(seq), rng.bounded(len));
    }
    return b;
}

void expect_batch_correct(const Batch& b, const core::BatchedSelectResult<float>& res) {
    ASSERT_EQ(res.values.size(), b.ranks.size());
    for (std::size_t s = 0; s < b.ranks.size(); ++s) {
        const auto begin = b.offsets[s];
        const auto len = b.offsets[s + 1] - begin;
        const std::span<const float> seq(b.flat.data() + begin, len);
        ASSERT_EQ(stats::rank_error<float>(seq, res.values[s], b.ranks[s]), 0u)
            << "sequence " << s;
    }
}

TEST(BatchedSelect, SmallBatchOfSmallSequences) {
    simt::Device dev(simt::arch_v100());
    Batch b;
    b.add({3, 1, 2}, 1);        // median -> 2
    b.add({10}, 0);             // singleton
    b.add({5, 5, 5, 5}, 2);     // duplicates
    b.add({9, 8, 7, 6, 5}, 0);  // min
    const auto res = core::batched_select<float>(dev, b.flat, b.offsets, b.ranks, {});
    EXPECT_EQ(res.values, (std::vector<float>{2, 10, 5, 5}));
    EXPECT_EQ(res.batched_sequences, 4u);
    EXPECT_EQ(res.recursive_sequences, 0u);
}

TEST(BatchedSelect, SingleLaunchPerStreamForShortSequences) {
    simt::Device dev(simt::arch_v100());
    const auto b = random_batch(100, 1000, 5);
    const auto res = core::batched_select<float>(dev, b.flat, b.offsets, b.ranks, {});
    expect_batch_correct(b, res);
    // One fused launch per stream of the fan, nothing else.
    EXPECT_EQ(res.launches, static_cast<std::uint64_t>(res.streams_used));
    EXPECT_EQ(res.batched_sequences, 100u);
}

TEST(BatchedSelect, SingleStreamKeepsOneFusedLaunch) {
    simt::Device dev(simt::arch_v100());
    const auto b = random_batch(100, 1000, 5);
    const auto res = core::batched_select<float>(dev, b.flat, b.offsets, b.ranks, {},
                                                 {.streams = 1});
    expect_batch_correct(b, res);
    EXPECT_EQ(res.streams_used, 1);
    EXPECT_EQ(res.launches, 1u);  // all sequences in one batched kernel
    EXPECT_EQ(res.batched_sequences, 100u);
}

TEST(BatchedSelect, MultiStreamMatchesSingleStreamValues) {
    const auto b = random_batch(64, 3000, 21);
    simt::Device serial_dev(simt::arch_v100());
    const auto serial = core::batched_select<float>(serial_dev, b.flat, b.offsets, b.ranks, {},
                                                    {.streams = 1});
    simt::Device fan_dev(simt::arch_v100());
    const auto fanned = core::batched_select<float>(fan_dev, b.flat, b.offsets, b.ranks, {},
                                                    {.streams = 4});
    EXPECT_EQ(fanned.values, serial.values);
    EXPECT_EQ(fanned.streams_used, 4);
    // Overlap accounting: wall is the slowest lane, serial the sum, so the
    // fan reports at least 1x and at most streams_used x overlap.
    EXPECT_GE(fanned.serial_ns, fanned.wall_ns - 1e-6);
    EXPECT_LE(fanned.serial_ns, 4.0 * fanned.wall_ns + 1e-6);
}

TEST(BatchedSelect, RandomBatchesParameterized) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        simt::Device dev(simt::arch_v100());
        const auto b = random_batch(32, 4096, seed);
        const auto res = core::batched_select<float>(dev, b.flat, b.offsets, b.ranks, {});
        expect_batch_correct(b, res);
    }
}

TEST(BatchedSelect, LongSequencesFallBackToRecursion) {
    simt::Device dev(simt::arch_v100());
    Batch b;
    b.add({4, 2, 6}, 1);
    const auto big = data::generate<float>(
        {.n = 20000, .dist = data::Distribution::uniform_real, .seed = 7});
    b.add(big, 10000);
    const auto res = core::batched_select<float>(dev, b.flat, b.offsets, b.ranks, {});
    expect_batch_correct(b, res);
    EXPECT_EQ(res.batched_sequences, 1u);
    EXPECT_EQ(res.recursive_sequences, 1u);
}

TEST(BatchedSelect, BatchedCheaperThanIndividualSelections) {
    const auto b = random_batch(200, 2048, 11);
    simt::Device batched_dev(simt::arch_v100());
    const auto batched =
        core::batched_select<float>(batched_dev, b.flat, b.offsets, b.ranks, {});
    expect_batch_correct(b, batched);

    // Individual one-sequence "batches" pay a launch per sequence.
    simt::Device single_dev(simt::arch_v100());
    double individual = 0;
    for (std::size_t s = 0; s < 200; ++s) {
        const auto begin = b.offsets[s];
        const std::vector<float> seq(b.flat.begin() + static_cast<std::ptrdiff_t>(begin),
                                     b.flat.begin() + static_cast<std::ptrdiff_t>(b.offsets[s + 1]));
        const std::vector<std::size_t> off{0, seq.size()};
        const std::vector<std::size_t> rk{b.ranks[s]};
        individual += core::batched_select<float>(single_dev, seq, off, rk, {}).sim_ns;
    }
    EXPECT_LT(batched.sim_ns, individual / 10.0);
}

TEST(BatchedSelect, ValidatesInputs) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> flat{1, 2, 3};
    // offsets not spanning flat
    EXPECT_THROW((void)core::batched_select<float>(dev, flat, std::vector<std::size_t>{0, 2},
                                                   std::vector<std::size_t>{0}, {}),
                 std::invalid_argument);
    // rank out of range
    EXPECT_THROW((void)core::batched_select<float>(dev, flat, std::vector<std::size_t>{0, 3},
                                                   std::vector<std::size_t>{3}, {}),
                 std::out_of_range);
    // empty sequence
    EXPECT_THROW((void)core::batched_select<float>(dev, flat,
                                                   std::vector<std::size_t>{0, 0, 3},
                                                   std::vector<std::size_t>{0, 0}, {}),
                 std::invalid_argument);
    // ranks size mismatch
    EXPECT_THROW((void)core::batched_select<float>(dev, flat, std::vector<std::size_t>{0, 3},
                                                   std::vector<std::size_t>{0, 1}, {}),
                 std::invalid_argument);
}

TEST(BatchedSelect, DoublePrecision) {
    simt::Device dev(simt::arch_v100());
    std::vector<double> flat(5000);
    std::iota(flat.begin(), flat.end(), 0.0);
    const std::vector<std::size_t> offsets{0, 2500, 5000};
    const std::vector<std::size_t> ranks{100, 2400};
    const auto res = core::batched_select<double>(dev, flat, offsets, ranks, {});
    EXPECT_EQ(res.values[0], 100.0);
    EXPECT_EQ(res.values[1], 2500.0 + 2400.0);
}

}  // namespace
