// Unit tests for the count kernel (core/count_kernel.hpp): histogram and
// oracle correctness across the atomic flavours, plus event-count
// invariants.

#include "core/count_kernel.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "core/reduce_kernel.hpp"
#include "core/sample_kernel.hpp"
#include "data/distributions.hpp"

namespace {

using namespace gpusel;
using core::SampleSelectConfig;
using core::SearchTree;

struct CountSetup {
    simt::Device dev{simt::arch_v100()};
    std::vector<float> data;
    SearchTree<float> tree;
    SampleSelectConfig cfg;

    explicit CountSetup(SampleSelectConfig c, std::size_t n = 1 << 14,
                        data::Distribution dist = data::Distribution::uniform_real,
                        std::size_t distinct = 0)
        : cfg(c) {
        data = data::generate<float>({.n = n, .dist = dist, .distinct_values = distinct,
                                      .seed = 77});
        tree = core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host);
    }

    /// Runs count (+reduce in shared mode) and returns (totals, oracles).
    std::pair<std::vector<std::int32_t>, std::vector<std::uint8_t>> run(bool with_oracles = true) {
        const auto b = static_cast<std::size_t>(cfg.num_buckets);
        auto totals = dev.alloc<std::int32_t>(b);
        auto oracles = dev.alloc<std::uint8_t>(with_oracles ? data.size() : 0);
        const int grid = simt::suggest_grid(dev.arch(), data.size(), cfg.block_dim, cfg.unroll);
        simt::DeviceBuffer<std::int32_t> block_counts;
        if (cfg.atomic_space == simt::AtomicSpace::shared) {
            block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * b);
        } else {
            core::launch_memset32(dev, totals.span(), simt::LaunchOrigin::host);
        }
        core::count_kernel<float>(dev, data, tree, oracles.span(), totals.span(),
                                  block_counts.span(), cfg, simt::LaunchOrigin::host);
        if (cfg.atomic_space == simt::AtomicSpace::shared) {
            core::reduce_kernel(dev, block_counts.span(), grid, cfg.num_buckets, totals.span(),
                                false, simt::LaunchOrigin::host, cfg.block_dim);
        }
        return {std::vector<std::int32_t>(totals.data(), totals.data() + b),
                std::vector<std::uint8_t>(oracles.data(), oracles.data() + oracles.size())};
    }

    std::vector<std::int32_t> host_histogram() const {
        std::vector<std::int32_t> h(static_cast<std::size_t>(cfg.num_buckets), 0);
        for (float x : data) ++h[static_cast<std::size_t>(tree.find_bucket(x))];
        return h;
    }
};

/// All four atomic flavours of Sec. IV-G / Fig. 6.
class CountKernelModes
    : public ::testing::TestWithParam<std::tuple<simt::AtomicSpace, bool>> {};

TEST_P(CountKernelModes, HistogramMatchesHostReference) {
    const auto [space, agg] = GetParam();
    SampleSelectConfig cfg;
    cfg.num_buckets = 64;
    cfg.atomic_space = space;
    cfg.warp_aggregation = agg;
    CountSetup s(cfg);
    const auto [totals, oracles] = s.run();
    EXPECT_EQ(totals, s.host_histogram());
    // histogram sums to n
    EXPECT_EQ(std::accumulate(totals.begin(), totals.end(), 0), static_cast<int>(s.data.size()));
}

TEST_P(CountKernelModes, OraclesMatchTreeTraversal) {
    const auto [space, agg] = GetParam();
    SampleSelectConfig cfg;
    cfg.num_buckets = 128;
    cfg.atomic_space = space;
    cfg.warp_aggregation = agg;
    CountSetup s(cfg);
    const auto [totals, oracles] = s.run();
    ASSERT_EQ(oracles.size(), s.data.size());
    for (std::size_t i = 0; i < s.data.size(); ++i) {
        ASSERT_EQ(static_cast<std::int32_t>(oracles[i]), s.tree.find_bucket(s.data[i]))
            << "element " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, CountKernelModes,
    ::testing::Combine(::testing::Values(simt::AtomicSpace::shared, simt::AtomicSpace::global),
                       ::testing::Bool()),
    [](const auto& info) {
        return std::string(std::get<0>(info.param) == simt::AtomicSpace::shared ? "shared"
                                                                                : "global") +
               (std::get<1>(info.param) ? "_warpagg" : "_plain");
    });

TEST(CountKernel, EventInvariantsPlainShared) {
    SampleSelectConfig cfg;
    cfg.num_buckets = 256;
    cfg.atomic_space = simt::AtomicSpace::shared;
    cfg.warp_aggregation = false;
    CountSetup s(cfg);
    s.dev.clear_profiles();
    (void)s.run();
    const simt::KernelProfile* count = nullptr;
    for (const auto& p : s.dev.profiles()) {
        if (p.name == "count") count = &p;
    }
    ASSERT_NE(count, nullptr);
    const auto n = s.data.size();
    // exactly one shared atomic per element, zero global atomics
    EXPECT_EQ(count->counters.shared_atomic_ops, n);
    EXPECT_EQ(count->counters.global_atomic_ops, 0u);
    // element reads + tree staging reads
    EXPECT_GE(count->counters.global_bytes_read, n * sizeof(float));
    // one oracle byte per element plus per-block partial counts
    EXPECT_GE(count->counters.global_bytes_written, n);
    EXPECT_EQ(count->counters.warp_ballots, 0u);
}

TEST(CountKernel, EventInvariantsAggregatedGlobal) {
    SampleSelectConfig cfg;
    cfg.num_buckets = 256;
    cfg.atomic_space = simt::AtomicSpace::global;
    cfg.warp_aggregation = true;
    CountSetup s(cfg);
    s.dev.clear_profiles();
    (void)s.run();
    const simt::KernelProfile* count = nullptr;
    for (const auto& p : s.dev.profiles()) {
        if (p.name == "count") count = &p;
    }
    ASSERT_NE(count, nullptr);
    const auto n = s.data.size();
    // warp aggregation: no collisions, fewer atomics than elements,
    // tree_height ballots per warp tile
    EXPECT_EQ(count->counters.global_atomic_collisions, 0u);
    EXPECT_LE(count->counters.global_atomic_ops, n);
    EXPECT_GT(count->counters.global_atomic_ops, 0u);
    const auto warps = (n + simt::kWarpSize - 1) / simt::kWarpSize;
    EXPECT_EQ(count->counters.warp_ballots, warps * 8u);  // log2(256) ballots per tile
}

TEST(CountKernel, DuplicateHeavyDataCausesCollisions) {
    SampleSelectConfig cfg;
    cfg.num_buckets = 64;
    cfg.atomic_space = simt::AtomicSpace::shared;
    CountSetup few(cfg, 1 << 14, data::Distribution::uniform_distinct, 1);
    few.dev.clear_profiles();
    (void)few.run();
    std::uint64_t coll_few = 0;
    for (const auto& p : few.dev.profiles()) coll_few += p.counters.shared_atomic_collisions;
    // d=1: every warp hits a single bucket -> 31 collisions per 32 ops
    EXPECT_GT(coll_few, (few.data.size() * 9) / 10);

    CountSetup many(cfg, 1 << 14, data::Distribution::uniform_real);
    many.dev.clear_profiles();
    (void)many.run();
    std::uint64_t coll_many = 0;
    for (const auto& p : many.dev.profiles()) coll_many += p.counters.shared_atomic_collisions;
    EXPECT_LT(coll_many, coll_few / 2);
}

TEST(CountKernel, NoWriteModeSkipsOracleTraffic) {
    SampleSelectConfig cfg;
    cfg.num_buckets = 64;
    cfg.atomic_space = simt::AtomicSpace::global;
    CountSetup s(cfg);
    s.dev.clear_profiles();
    (void)s.run(/*with_oracles=*/false);
    const simt::KernelProfile* count = nullptr;
    for (const auto& p : s.dev.profiles()) {
        if (p.name == "count_nowrite") count = &p;
    }
    ASSERT_NE(count, nullptr);
    EXPECT_EQ(count->counters.global_bytes_written, 0u);
}

TEST(CountKernel, UnrollAffectsTimingNotResults) {
    SampleSelectConfig a;
    a.num_buckets = 64;
    a.unroll = 1;
    SampleSelectConfig b = a;
    b.unroll = 8;
    CountSetup sa(a);
    CountSetup sb(b);
    EXPECT_EQ(sa.run().first, sb.run().first);
}

TEST(CountKernel, ThrowsOnOracleSizeMismatch) {
    SampleSelectConfig cfg;
    cfg.num_buckets = 64;
    CountSetup s(cfg);
    auto totals = s.dev.alloc<std::int32_t>(64);
    auto oracles = s.dev.alloc<std::uint8_t>(10);  // wrong size
    auto block_counts = s.dev.alloc<std::int32_t>(1 << 20);
    EXPECT_THROW(core::count_kernel<float>(s.dev, s.data, s.tree, oracles.span(), totals.span(),
                                           block_counts.span(), s.cfg, simt::LaunchOrigin::host),
                 std::invalid_argument);
}

}  // namespace
