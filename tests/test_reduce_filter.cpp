// Unit tests for the reduce (prefix-sum) and filter (bucket extraction)
// kernels, i.e. the shared-memory atomic hierarchy of Sec. IV-G.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/count_kernel.hpp"
#include "core/filter_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "core/sample_kernel.hpp"
#include "data/distributions.hpp"

namespace {

using namespace gpusel;
using core::SampleSelectConfig;

TEST(ReduceKernel, TotalsAreColumnSums) {
    simt::Device dev(simt::arch_v100());
    const int grid = 5;
    const int b = 8;
    auto bc = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * b);
    for (int g = 0; g < grid; ++g) {
        for (int i = 0; i < b; ++i) bc[static_cast<std::size_t>(g * b + i)] = g + i;
    }
    auto totals = dev.alloc<std::int32_t>(b);
    core::reduce_kernel(dev, bc.span(), grid, b, totals.span(), false, simt::LaunchOrigin::host);
    for (int i = 0; i < b; ++i) {
        EXPECT_EQ(totals[static_cast<std::size_t>(i)], 5 * i + 10);  // sum over g of (g+i)
    }
}

TEST(ReduceKernel, BlockOffsetsAreExclusivePrefix) {
    simt::Device dev(simt::arch_v100());
    const int grid = 4;
    const int b = 2;
    auto bc = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * b);
    // bucket 0 counts per block: 1,2,3,4 ; bucket 1: 10,10,10,10
    for (int g = 0; g < grid; ++g) {
        bc[static_cast<std::size_t>(g * b)] = g + 1;
        bc[static_cast<std::size_t>(g * b + 1)] = 10;
    }
    auto totals = dev.alloc<std::int32_t>(b);
    core::reduce_kernel(dev, bc.span(), grid, b, totals.span(), true, simt::LaunchOrigin::host);
    EXPECT_EQ(totals[0], 10);
    EXPECT_EQ(totals[1], 40);
    const std::int32_t expect0[] = {0, 1, 3, 6};
    const std::int32_t expect1[] = {0, 10, 20, 30};
    for (int g = 0; g < grid; ++g) {
        EXPECT_EQ(bc[static_cast<std::size_t>(g * b)], expect0[g]);
        EXPECT_EQ(bc[static_cast<std::size_t>(g * b + 1)], expect1[g]);
    }
}

TEST(SelectBucketKernel, PrefixAndLowerBound) {
    simt::Device dev(simt::arch_v100());
    auto totals = dev.alloc<std::int32_t>(4);
    totals[0] = 5;
    totals[1] = 0;
    totals[2] = 7;
    totals[3] = 3;
    auto prefix = dev.alloc<std::int32_t>(5);
    EXPECT_EQ(core::select_bucket_kernel(dev, totals.span(), prefix.span(), 0,
                                         simt::LaunchOrigin::host),
              0);
    EXPECT_EQ(core::select_bucket_kernel(dev, totals.span(), prefix.span(), 4,
                                         simt::LaunchOrigin::host),
              0);
    EXPECT_EQ(core::select_bucket_kernel(dev, totals.span(), prefix.span(), 5,
                                         simt::LaunchOrigin::host),
              2);  // bucket 1 is empty
    EXPECT_EQ(core::select_bucket_kernel(dev, totals.span(), prefix.span(), 11,
                                         simt::LaunchOrigin::host),
              2);
    EXPECT_EQ(core::select_bucket_kernel(dev, totals.span(), prefix.span(), 12,
                                         simt::LaunchOrigin::host),
              3);
    EXPECT_EQ(prefix[0], 0);
    EXPECT_EQ(prefix[1], 5);
    EXPECT_EQ(prefix[2], 5);
    EXPECT_EQ(prefix[3], 12);
    EXPECT_EQ(prefix[4], 15);
}

/// End-to-end count -> reduce -> filter pipeline, both atomic flavours.
class FilterPipeline : public ::testing::TestWithParam<std::tuple<simt::AtomicSpace, bool>> {};

TEST_P(FilterPipeline, ExtractsExactlyTheBucketElements) {
    const auto [space, agg] = GetParam();
    simt::Device dev(simt::arch_v100());
    SampleSelectConfig cfg;
    cfg.num_buckets = 32;
    cfg.atomic_space = space;
    cfg.warp_aggregation = agg;
    const std::size_t n = 1 << 13;
    const auto data =
        data::generate<float>({.n = n, .dist = data::Distribution::normal, .seed = 21});
    const auto tree = core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host);

    const auto b = static_cast<std::size_t>(cfg.num_buckets);
    auto totals = dev.alloc<std::int32_t>(b);
    auto oracles = dev.alloc<std::uint8_t>(n);
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    simt::DeviceBuffer<std::int32_t> block_counts;
    const bool shared = space == simt::AtomicSpace::shared;
    if (shared) {
        block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * b);
    } else {
        core::launch_memset32(dev, totals.span(), simt::LaunchOrigin::host);
    }
    core::count_kernel<float>(dev, data, tree, oracles.span(), totals.span(), block_counts.span(),
                              cfg, simt::LaunchOrigin::host);
    if (shared) {
        core::reduce_kernel(dev, block_counts.span(), grid, cfg.num_buckets, totals.span(), true,
                            simt::LaunchOrigin::host, cfg.block_dim);
    }

    // Extract every bucket and verify it is a permutation of the reference.
    for (std::int32_t bucket = 0; bucket < cfg.num_buckets; ++bucket) {
        const auto size = static_cast<std::size_t>(totals[static_cast<std::size_t>(bucket)]);
        auto out = dev.alloc<float>(size);
        simt::DeviceBuffer<std::int32_t> cursor;
        if (!shared) {
            cursor = dev.alloc<std::int32_t>(1);
            core::launch_memset32(dev, cursor.span(), simt::LaunchOrigin::host);
        }
        core::filter_kernel<float>(dev, data, oracles.span(), bucket, out.span(),
                                   block_counts.span(), cfg.num_buckets, cursor.span(), cfg,
                                   simt::LaunchOrigin::host, grid);
        std::vector<float> expect;
        for (float x : data) {
            if (tree.find_bucket(x) == bucket) expect.push_back(x);
        }
        std::vector<float> got(out.data(), out.data() + size);
        std::sort(expect.begin(), expect.end());
        std::sort(got.begin(), got.end());
        ASSERT_EQ(got, expect) << "bucket " << bucket;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, FilterPipeline,
    ::testing::Combine(::testing::Values(simt::AtomicSpace::shared, simt::AtomicSpace::global),
                       ::testing::Bool()),
    [](const auto& info) {
        return std::string(std::get<0>(info.param) == simt::AtomicSpace::shared ? "shared"
                                                                                : "global") +
               (std::get<1>(info.param) ? "_warpagg" : "_plain");
    });

TEST(FilterKernel, SharedModePreservesBlockOrderOffsets) {
    // In shared mode, each block writes its bucket elements into the range
    // the reduce assigned -- so elements keep their relative block order.
    simt::Device dev(simt::arch_v100());
    SampleSelectConfig cfg;
    cfg.num_buckets = 2;
    cfg.atomic_space = simt::AtomicSpace::shared;
    // handcrafted: data 0..4095, splitter tree with single splitter 2048
    const std::size_t n = 4096;
    std::vector<float> data(n);
    std::iota(data.begin(), data.end(), 0.0f);
    const auto tree = core::SearchTree<float>::build({2048.0f});
    auto totals = dev.alloc<std::int32_t>(2);
    auto oracles = dev.alloc<std::uint8_t>(n);
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, 1);
    auto bc = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * 2);
    core::count_kernel<float>(dev, data, tree, oracles.span(), totals.span(), bc.span(), cfg,
                              simt::LaunchOrigin::host);
    core::reduce_kernel(dev, bc.span(), grid, 2, totals.span(), true, simt::LaunchOrigin::host);
    EXPECT_EQ(totals[0], 2048);
    EXPECT_EQ(totals[1], 2048);
    auto out = dev.alloc<float>(2048);
    core::filter_kernel<float>(dev, data, oracles.span(), 1, out.span(), bc.span(), 2, {}, cfg,
                               simt::LaunchOrigin::host, grid);
    // bucket 1 = values >= 2048, in original order because blocks and lanes
    // process tiles in order under sequential simulation
    for (std::size_t i = 0; i < 2048; ++i) {
        ASSERT_EQ(out[i], static_cast<float>(2048 + i));
    }
}

TEST(FilterKernel, OracleTrafficIsOneBytePerElement) {
    simt::Device dev(simt::arch_v100());
    SampleSelectConfig cfg;
    cfg.num_buckets = 16;
    const std::size_t n = 1 << 12;
    const auto data =
        data::generate<float>({.n = n, .dist = data::Distribution::uniform_real, .seed = 3});
    const auto tree = core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host);
    auto totals = dev.alloc<std::int32_t>(16);
    auto oracles = dev.alloc<std::uint8_t>(n);
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, 1);
    auto bc = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * 16);
    core::count_kernel<float>(dev, data, tree, oracles.span(), totals.span(), bc.span(), cfg,
                              simt::LaunchOrigin::host);
    core::reduce_kernel(dev, bc.span(), grid, 16, totals.span(), true, simt::LaunchOrigin::host);
    auto out = dev.alloc<float>(static_cast<std::size_t>(totals[7]));
    dev.clear_profiles();
    core::filter_kernel<float>(dev, data, oracles.span(), 7, out.span(), bc.span(), 16, {}, cfg,
                               simt::LaunchOrigin::host, grid);
    const auto& prof = dev.profiles().back();
    EXPECT_EQ(prof.name, "filter");
    // oracle scan: n bytes coalesced reads (+ per-block offset reads)
    EXPECT_GE(prof.counters.global_bytes_read, n);
    EXPECT_LT(prof.counters.global_bytes_read, n + 16384);
    // element loads only for the bucket's elements (scattered)
    EXPECT_EQ(prof.counters.scattered_bytes_read,
              static_cast<std::uint64_t>(totals[7]) * sizeof(float));
}

}  // namespace
