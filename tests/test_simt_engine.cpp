// Unit tests for the SIMT execution engine: block/warp contexts, shared
// memory, atomics with collision accounting, warp aggregation, the device
// launch machinery, the dynamic-parallelism queue and allocation tracking.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/sample_select.hpp"
#include "simt/arch.hpp"
#include "simt/block.hpp"
#include "simt/device.hpp"
#include "simt/memory.hpp"
#include "simt/thread_pool.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel::simt;

Device make_device() { return Device(arch_v100()); }

TEST(ArchPresets, TableOneValues) {
    const auto k20 = arch_k20xm();
    EXPECT_EQ(k20.num_sms, 13);
    EXPECT_DOUBLE_EQ(k20.sustained_bandwidth_gbs, 146.0);
    EXPECT_FALSE(k20.has_fast_shared_atomics);
    const auto v100 = arch_v100();
    EXPECT_EQ(v100.num_sms, 80);
    EXPECT_DOUBLE_EQ(v100.sustained_bandwidth_gbs, 742.0);
    EXPECT_TRUE(v100.has_fast_shared_atomics);
    EXPECT_GT(v100.shared_atomic_ops_per_ns, v100.global_atomic_ops_per_ns);
    EXPECT_GT(k20.global_atomic_ops_per_ns, k20.shared_atomic_ops_per_ns);
}

TEST(ArchPresets, PresetLookup) {
    EXPECT_EQ(preset("V100").name, "V100");
    EXPECT_EQ(preset("k20xm").name, "K20Xm");
    EXPECT_THROW((void)preset("A100"), std::invalid_argument);
}

TEST(BlockCtx, RejectsBadBlockDim) {
    const auto arch = arch_v100();
    EXPECT_THROW(BlockCtx(arch, 0, 1, 33, 1024), std::invalid_argument);
    EXPECT_THROW(BlockCtx(arch, 0, 1, 0, 1024), std::invalid_argument);
    EXPECT_THROW(BlockCtx(arch, 0, 1, 2048, 1024), std::invalid_argument);
}

TEST(BlockCtx, SharedArrayCapacityEnforced) {
    const auto arch = arch_v100();
    BlockCtx blk(arch, 0, 1, 256, 1024);
    auto a = blk.shared_array<std::int32_t>(128);  // 512 B
    EXPECT_EQ(a.size(), 128u);
    auto b = blk.shared_array<std::int32_t>(128);  // 1024 B total
    EXPECT_EQ(b.size(), 128u);
    EXPECT_THROW((void)blk.shared_array<std::int32_t>(1), std::runtime_error);
}

TEST(BlockCtx, SharedArraysDisjoint) {
    const auto arch = arch_v100();
    BlockCtx blk(arch, 0, 1, 256, 4096);
    auto a = blk.shared_array<std::int32_t>(16);
    auto b = blk.shared_array<std::int32_t>(16);
    a[15] = 7;
    b[0] = 9;
    EXPECT_EQ(a[15], 7);
}

TEST(BlockCtx, SyncCountsBarriers) {
    const auto arch = arch_v100();
    BlockCtx blk(arch, 0, 1, 256, 4096);
    blk.sync();
    blk.sync();
    EXPECT_EQ(blk.counters().block_barriers, 2u);
}

TEST(WarpTiles, CoversEveryIndexExactlyOnce) {
    Device dev = make_device();
    const std::size_t n = 10007;  // odd size exercises partial tiles
    std::vector<int> hits(n, 0);
    dev.launch("cover", {.grid_dim = 7, .block_dim = 64}, [&](BlockCtx& blk) {
        blk.warp_tiles(n, [&](WarpCtx& w, std::size_t base, std::size_t) {
            for (int l = 0; l < w.lanes(); ++l) ++hits[base + static_cast<std::size_t>(l)];
        });
    });
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i], 1) << "index " << i;
    }
}

TEST(WarpTiles, LoadStoreRoundTripAndByteCounts) {
    Device dev = make_device();
    const std::size_t n = 4096;
    auto src = dev.alloc<float>(n);
    auto dst = dev.alloc<float>(n);
    std::iota(src.data(), src.data() + n, 0.0f);
    const auto prof = dev.launch("copy", {.grid_dim = 4, .block_dim = 128}, [&](BlockCtx& blk) {
        blk.warp_tiles(n, [&](WarpCtx& w, std::size_t base, std::size_t) {
            float regs[kWarpSize];
            w.load(std::span<const float>(src.span()), base, regs);
            w.store(dst.span(), base, regs);
        });
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(dst[i], static_cast<float>(i));
    EXPECT_EQ(prof.counters.global_bytes_read, n * sizeof(float));
    EXPECT_EQ(prof.counters.global_bytes_written, n * sizeof(float));
}

TEST(Warp, BallotMaskAndCount) {
    const auto arch = arch_v100();
    BlockCtx blk(arch, 0, 1, 32, 1024);
    WarpCtx w(blk, 32);
    bool pred[kWarpSize];
    for (int l = 0; l < 32; ++l) pred[l] = (l % 2) == 0;
    EXPECT_EQ(w.ballot(pred), 0x55555555u);
    EXPECT_EQ(blk.counters().warp_ballots, 1u);
}

TEST(Warp, BallotPartialWarp) {
    const auto arch = arch_v100();
    BlockCtx blk(arch, 0, 1, 32, 1024);
    WarpCtx w(blk, 5);
    bool pred[kWarpSize] = {true, false, true, false, true};
    EXPECT_EQ(w.ballot(pred), 0b10101u);
}

TEST(Warp, AtomicAddCountsCollisions) {
    const auto arch = arch_v100();
    BlockCtx blk(arch, 0, 1, 32, 1 << 16);
    WarpCtx w(blk, 32);
    std::vector<std::int32_t> counters(8, 0);
    std::int32_t bucket[kWarpSize];
    for (int l = 0; l < 32; ++l) bucket[l] = l % 4;  // 4 distinct targets
    w.atomic_add(AtomicSpace::shared, counters, bucket);
    EXPECT_EQ(blk.counters().shared_atomic_ops, 32u);
    EXPECT_EQ(blk.counters().shared_atomic_collisions, 28u);  // 32 - 4 distinct
    for (int i = 0; i < 4; ++i) EXPECT_EQ(counters[static_cast<std::size_t>(i)], 8);
    for (int i = 4; i < 8; ++i) EXPECT_EQ(counters[static_cast<std::size_t>(i)], 0);
}

TEST(Warp, AtomicAddAllSameAddressMaxCollisions) {
    const auto arch = arch_v100();
    BlockCtx blk(arch, 0, 1, 32, 1 << 16);
    WarpCtx w(blk, 32);
    std::vector<std::int32_t> counters(2, 0);
    std::int32_t bucket[kWarpSize] = {};  // all zero
    w.atomic_add(AtomicSpace::global, counters, bucket);
    EXPECT_EQ(blk.counters().global_atomic_ops, 32u);
    EXPECT_EQ(blk.counters().global_atomic_collisions, 31u);
    EXPECT_EQ(counters[0], 32);
}

TEST(Warp, AggregatedAtomicSameResultFewerOps) {
    const auto arch = arch_v100();
    BlockCtx blk(arch, 0, 1, 32, 1 << 16);
    WarpCtx w(blk, 32);
    std::vector<std::int32_t> plain(16, 0);
    std::vector<std::int32_t> agg(16, 0);
    std::int32_t bucket[kWarpSize];
    for (int l = 0; l < 32; ++l) bucket[l] = (l * 7) % 5;
    w.atomic_add(AtomicSpace::shared, plain, bucket);
    const auto ops_plain = blk.counters().shared_atomic_ops;
    w.atomic_add_aggregated(AtomicSpace::shared, agg, bucket, 4);
    const auto ops_total = blk.counters().shared_atomic_ops;
    EXPECT_EQ(plain, agg);                      // identical histogram
    EXPECT_EQ(ops_total - ops_plain, 5u);       // one op per distinct bucket
    EXPECT_EQ(blk.counters().warp_ballots, 4u);  // index_bits ballots
    EXPECT_EQ(blk.counters().shared_atomic_collisions, 32u - 5u);  // only plain
}

TEST(Warp, FetchAddAssignsUniqueOffsets) {
    const auto arch = arch_v100();
    BlockCtx blk(arch, 0, 1, 32, 1 << 16);
    WarpCtx w(blk, 32);
    std::vector<std::int32_t> ctr(1, 100);
    std::int32_t which[kWarpSize] = {};
    std::int32_t off[kWarpSize];
    w.fetch_add(AtomicSpace::shared, ctr, which, off, /*aggregated=*/false, 1);
    std::vector<std::int32_t> offs(off, off + 32);
    std::sort(offs.begin(), offs.end());
    for (int l = 0; l < 32; ++l) EXPECT_EQ(offs[static_cast<std::size_t>(l)], 100 + l);
    EXPECT_EQ(ctr[0], 132);
}

TEST(Warp, FetchAddAggregatedMatchesPlainSemantics) {
    const auto arch = arch_v100();
    BlockCtx blk(arch, 0, 1, 32, 1 << 16);
    WarpCtx w(blk, 32);
    std::vector<std::int32_t> ctr(2, 0);
    std::int32_t which[kWarpSize];
    bool active[kWarpSize];
    for (int l = 0; l < 32; ++l) {
        which[l] = l % 2;
        active[l] = (l % 3) != 0;
    }
    std::int32_t off[kWarpSize];
    w.fetch_add(AtomicSpace::shared, ctr, which, off, /*aggregated=*/true, 1, active);
    // Offsets per counter must be unique and dense starting at 0.
    std::vector<std::int32_t> per_ctr[2];
    int n_active = 0;
    for (int l = 0; l < 32; ++l) {
        if (active[l]) {
            per_ctr[which[l]].push_back(off[l]);
            ++n_active;
        }
    }
    for (auto& offs : per_ctr) {
        std::sort(offs.begin(), offs.end());
        for (std::size_t i = 0; i < offs.size(); ++i) {
            EXPECT_EQ(offs[i], static_cast<std::int32_t>(i));
        }
    }
    EXPECT_EQ(ctr[0] + ctr[1], n_active);
    // aggregated: exactly 2 atomics (one per distinct counter)
    EXPECT_EQ(blk.counters().shared_atomic_ops, 2u);
}

TEST(Warp, GatherScatterCountsScatteredBytes) {
    Device dev = make_device();
    const std::size_t n = 64;
    auto src = dev.alloc<double>(n);
    auto dst = dev.alloc<double>(n);
    std::iota(src.data(), src.data() + n, 0.0);
    const auto prof = dev.launch("gs", {.grid_dim = 1, .block_dim = 32}, [&](BlockCtx& blk) {
        blk.warp_tiles(n, [&](WarpCtx& w, std::size_t base, std::size_t) {
            std::size_t idx[kWarpSize];
            double regs[kWarpSize];
            for (int l = 0; l < w.lanes(); ++l) {
                idx[l] = n - 1 - (base + static_cast<std::size_t>(l));
            }
            w.gather(std::span<const double>(src.span()), idx, regs);
            w.scatter(dst.span(), idx, regs);
        });
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(dst[i], src[i]);
    EXPECT_EQ(prof.counters.scattered_bytes_read, n * sizeof(double));
    EXPECT_EQ(prof.counters.scattered_bytes_written, n * sizeof(double));
}

TEST(Device, ClockAdvancesAndProfilesRecorded) {
    Device dev = make_device();
    EXPECT_EQ(dev.elapsed_ns(), 0.0);
    dev.launch("noop", {.grid_dim = 1, .block_dim = 32}, [](BlockCtx&) {});
    EXPECT_GT(dev.elapsed_ns(), 0.0);  // at least launch latency
    ASSERT_EQ(dev.profiles().size(), 1u);
    EXPECT_EQ(dev.profiles()[0].name, "noop");
    EXPECT_EQ(dev.launch_count(), 1u);
}

TEST(Device, DeviceOriginCheaperThanHost) {
    Device dev = make_device();
    const auto host =
        dev.launch("h", {.grid_dim = 1, .block_dim = 32, .origin = LaunchOrigin::host},
                   [](BlockCtx&) {});
    const auto devl =
        dev.launch("d", {.grid_dim = 1, .block_dim = 32, .origin = LaunchOrigin::device},
                   [](BlockCtx&) {});
    EXPECT_GT(host.sim_ns, devl.sim_ns);
}

TEST(Device, QueueRunsInFifoOrderAndSupportsChaining) {
    Device dev = make_device();
    std::vector<int> order;
    dev.device_enqueue([&](Device& d) {
        order.push_back(1);
        d.device_enqueue([&](Device&) { order.push_back(3); });
    });
    dev.device_enqueue([&](Device&) { order.push_back(2); });
    dev.drain();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Device, GlobalAtomicsSafeUnderHostParallelism) {
    Device dev(arch_v100(), {.host_workers = 4});
    auto ctr = dev.alloc<std::int32_t>(1);
    ctr[0] = 0;
    const std::size_t n = 1 << 16;
    dev.launch("inc", {.grid_dim = 64, .block_dim = 128}, [&](BlockCtx& blk) {
        blk.warp_tiles(n, [&](WarpCtx& w, std::size_t, std::size_t) {
            std::int32_t zeros[kWarpSize] = {};
            std::int32_t old[kWarpSize];
            w.fetch_add(AtomicSpace::global, ctr.span(), zeros, old, false, 1);
        });
    });
    EXPECT_EQ(ctr[0], static_cast<std::int32_t>(n));
}

TEST(Streams, LaunchesOnOneStreamSerialize) {
    Device dev = make_device();
    auto body = [](BlockCtx& blk) { blk.charge_instr(1000000); };
    const auto a = dev.launch("a", {.grid_dim = 160, .block_dim = 256}, body);
    const auto b = dev.launch("b", {.grid_dim = 160, .block_dim = 256}, body);
    EXPECT_DOUBLE_EQ(dev.elapsed_ns(), a.sim_ns + b.sim_ns);
}

TEST(Streams, DifferentStreamsOverlap) {
    Device dev = make_device();
    const int s1 = dev.create_stream();
    const int s2 = dev.create_stream();
    auto body = [](BlockCtx& blk) { blk.charge_instr(10000000); };
    const auto a = dev.launch("a", {.grid_dim = 160, .block_dim = 256, .stream = s1}, body);
    const auto b = dev.launch("b", {.grid_dim = 160, .block_dim = 256, .stream = s2}, body);
    // idealized full overlap: total = max, not sum
    EXPECT_DOUBLE_EQ(dev.elapsed_ns(), std::max(a.sim_ns, b.sim_ns));
    EXPECT_DOUBLE_EQ(dev.stream_clock(s1), a.sim_ns);
    EXPECT_DOUBLE_EQ(dev.stream_clock(s2), b.sim_ns);
}

TEST(Streams, NewStreamStartsAtCurrentCompletion) {
    Device dev = make_device();
    dev.launch("warmup", {.grid_dim = 1, .block_dim = 32}, [](BlockCtx&) {});
    const double after_warmup = dev.elapsed_ns();
    const int s = dev.create_stream();
    dev.launch("later", {.grid_dim = 1, .block_dim = 32, .stream = s}, [](BlockCtx&) {});
    EXPECT_GT(dev.stream_clock(s), after_warmup);  // causality: no time travel
}

TEST(Streams, WaitEventOrdersAcrossStreams) {
    Device dev = make_device();
    const int s1 = dev.create_stream();
    const int s2 = dev.create_stream();
    dev.launch("producer", {.grid_dim = 160, .block_dim = 256, .stream = s1},
               [](BlockCtx& blk) { blk.charge_instr(50000000); });
    const double ev = dev.record_event(s1);
    dev.wait_event(s2, ev);
    const auto c = dev.launch("consumer", {.grid_dim = 1, .block_dim = 32, .stream = s2},
                              [](BlockCtx&) {});
    EXPECT_DOUBLE_EQ(dev.stream_clock(s2), ev + c.sim_ns);
}

TEST(Streams, SynchronizeAlignsAllStreams) {
    Device dev = make_device();
    const int s1 = dev.create_stream();
    dev.launch("work", {.grid_dim = 160, .block_dim = 256, .stream = s1},
               [](BlockCtx& blk) { blk.charge_instr(10000000); });
    dev.synchronize();
    EXPECT_DOUBLE_EQ(dev.stream_clock(0), dev.elapsed_ns());
    EXPECT_DOUBLE_EQ(dev.stream_clock(s1), dev.elapsed_ns());
}

TEST(Streams, UnknownStreamRejected) {
    Device dev = make_device();
    EXPECT_THROW(
        (void)dev.launch("x", {.grid_dim = 1, .block_dim = 32, .stream = 7}, [](BlockCtx&) {}),
        std::invalid_argument);
    EXPECT_THROW((void)dev.stream_clock(7), std::invalid_argument);
}

TEST(Streams, TwoSelectionsOverlapEndToEnd) {
    // The stream knob on SampleSelectConfig lets two full selections share
    // the device: total completion < sum of individual durations.
    Device dev = make_device();
    const int s1 = dev.create_stream();
    const int s2 = dev.create_stream();
    const std::size_t n = 1 << 18;
    std::vector<float> data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<float>((i * 2654435761u) % n);
    gpusel::core::SampleSelectConfig c1;
    c1.stream = s1;
    gpusel::core::SampleSelectConfig c2;
    c2.stream = s2;
    const auto r1 = gpusel::core::sample_select<float>(dev, data, n / 4, c1);
    const auto r2 = gpusel::core::sample_select<float>(dev, data, 3 * n / 4, c2);
    // Wall clock is the max over the two streams' busy time, not the sum.
    const double busy1 = dev.stream_clock(s1);
    const double busy2 = dev.stream_clock(s2);
    EXPECT_GT(busy1, 0.0);
    EXPECT_GT(busy2, 0.0);
    EXPECT_DOUBLE_EQ(dev.elapsed_ns(), std::max(busy1, busy2));
    EXPECT_LT(dev.elapsed_ns(), 0.75 * (busy1 + busy2));
    EXPECT_EQ(r1.value, gpusel::stats::nth_element_reference(data, n / 4));
    EXPECT_EQ(r2.value, gpusel::stats::nth_element_reference(data, 3 * n / 4));
}

TEST(HostParallelism, FullPipelineMatchesSequential) {
    // Blocks executed on a host thread pool must produce the same result,
    // the same event totals and the same simulated time as sequential
    // execution (interleaving only changes write order, never counts).
    const std::size_t n = 1 << 16;
    std::vector<float> data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<float>((i * 40503u) % n);

    Device seq(arch_v100());
    Device par(arch_v100(), {.host_workers = 4});
    gpusel::core::SampleSelectConfig cfg;
    cfg.atomic_space = AtomicSpace::global;  // exercises cross-block atomics
    const auto rs = gpusel::core::sample_select<float>(seq, data, n / 3, cfg);
    const auto rp = gpusel::core::sample_select<float>(par, data, n / 3, cfg);
    EXPECT_EQ(rs.value, rp.value);
    EXPECT_EQ(rs.sim_ns, rp.sim_ns);
    EXPECT_EQ(seq.counter_totals(), par.counter_totals());
}

TEST(AllocationTracker, PeakAboveBaseline) {
    AllocationTracker t;
    t.on_alloc(100);
    t.set_baseline();
    t.on_alloc(50);
    t.on_alloc(30);
    t.on_free(50);
    t.on_alloc(10);
    EXPECT_EQ(t.peak_above_baseline(), 80u);
    EXPECT_EQ(t.current(), 140u);
}

TEST(DeviceBuffer, TracksAllocationLifetime) {
    Device dev = make_device();
    const auto before = dev.tracker().current();
    {
        auto buf = dev.alloc<double>(1000);
        EXPECT_EQ(dev.tracker().current(), before + 8000);
    }
    EXPECT_EQ(dev.tracker().current(), before);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
    Device dev = make_device();
    auto a = dev.alloc<int>(10);
    a[3] = 42;
    auto b = std::move(a);
    EXPECT_EQ(b[3], 42);
    EXPECT_EQ(b.size(), 10u);
    EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(ThreadPool, InlineExecutionWhenNoWorkers) {
    ThreadPool pool(0);
    std::vector<int> hits(100, 0);
    pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
    for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelExecutionCoversAll) {
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(10,
                                   [](std::size_t i) {
                                       if (i == 5) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
}

TEST(Counters, AdditionAggregates) {
    KernelCounters a;
    a.global_bytes_read = 10;
    a.shared_atomic_ops = 3;
    KernelCounters b;
    b.global_bytes_read = 5;
    b.warp_ballots = 2;
    const auto c = a + b;
    EXPECT_EQ(c.global_bytes_read, 15u);
    EXPECT_EQ(c.shared_atomic_ops, 3u);
    EXPECT_EQ(c.warp_ballots, 2u);
}

}  // namespace
