// Unit tests for the splitter sample kernel (core/sample_kernel.hpp),
// including the Mosteller sample-percentile property of Sec. II-B.

#include "core/sample_kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/distributions.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;
using core::SampleSelectConfig;

TEST(SampleKernel, SplittersSortedAndFromData) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = 1 << 14, .dist = data::Distribution::uniform_real, .seed = 4});
    SampleSelectConfig cfg;
    cfg.num_buckets = 64;
    const auto tree = core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host);
    EXPECT_EQ(tree.num_buckets, 64);
    EXPECT_TRUE(std::is_sorted(tree.splitters.begin(), tree.splitters.end()));
    // every splitter is an actual data element (sampling, not synthesis)
    for (float s : tree.splitters) {
        EXPECT_NE(std::find(data.begin(), data.end(), s), data.end());
    }
}

TEST(SampleKernel, DeterministicForFixedSeed) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = 1 << 12, .dist = data::Distribution::uniform_real, .seed = 9});
    SampleSelectConfig cfg;
    cfg.num_buckets = 32;
    cfg.seed = 5;
    const auto a = core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host, 1);
    const auto b = core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host, 1);
    EXPECT_EQ(a.splitters, b.splitters);
    const auto c = core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host, 2);
    EXPECT_NE(a.splitters, c.splitters);
}

TEST(SampleKernel, ChargesScatteredSampleReads) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = 1 << 12, .dist = data::Distribution::uniform_real, .seed = 9});
    SampleSelectConfig cfg;
    cfg.num_buckets = 64;
    cfg.sample_size = 512;
    (void)core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host);
    const auto& prof = dev.profiles().back();
    EXPECT_EQ(prof.name, "sample");
    EXPECT_EQ(prof.counters.scattered_bytes_read, 512 * sizeof(float));
    EXPECT_GT(prof.counters.block_barriers, 0u);  // bitonic steps
}

// Property test: the relative rank of the sampled p-percentile splitter is
// asymptotically N(p, p(1-p)/s) (Mosteller 1946).  With many independent
// trials the observed deviations must stay within a few predicted sigmas.
class SamplePercentileProperty : public ::testing::TestWithParam<int> {};

TEST_P(SamplePercentileProperty, SplitterRanksNearTheoreticalPercentiles) {
    const int sample_size = GetParam();
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data =
        data::generate<double>({.n = n, .dist = data::Distribution::uniform_real, .seed = 31});
    SampleSelectConfig cfg;
    cfg.num_buckets = 16;
    cfg.sample_size = sample_size;

    const int trials = 24;
    int violations = 0;
    for (int t = 0; t < trials; ++t) {
        const auto tree = core::sample_splitters<double>(
            dev, data, cfg, simt::LaunchOrigin::host, static_cast<std::uint64_t>(t));
        for (std::size_t i = 1; i < 16; ++i) {
            const double p = static_cast<double>(i) / 16.0;
            const double sd = stats::sample_percentile_stddev(
                p, static_cast<std::size_t>(sample_size));
            const double rel_rank =
                static_cast<double>(stats::min_rank<double>(data, tree.splitters[i - 1])) /
                static_cast<double>(n);
            if (std::abs(rel_rank - p) > 4.0 * sd + 1.0 / sample_size) ++violations;
        }
    }
    // 4-sigma violations should be very rare (allow a couple out of 360).
    EXPECT_LE(violations, 3);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, SamplePercentileProperty, ::testing::Values(256, 1024, 4096));

TEST(SampleKernel, LargerSampleGivesTighterPercentiles) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data =
        data::generate<double>({.n = n, .dist = data::Distribution::uniform_real, .seed = 8});
    auto spread = [&](int s) {
        SampleSelectConfig cfg;
        cfg.num_buckets = 16;
        cfg.sample_size = s;
        double total = 0;
        for (int t = 0; t < 16; ++t) {
            const auto tree = core::sample_splitters<double>(
                dev, data, cfg, simt::LaunchOrigin::host, static_cast<std::uint64_t>(t));
            for (std::size_t i = 1; i < 16; ++i) {
                const double p = static_cast<double>(i) / 16.0;
                const double rel =
                    static_cast<double>(stats::min_rank<double>(data, tree.splitters[i - 1])) /
                    static_cast<double>(n);
                total += (rel - p) * (rel - p);
            }
        }
        return total;
    };
    EXPECT_LT(spread(4096), spread(64));
}

TEST(SampleKernel, DuplicateHeavyDataYieldsEqualityBuckets) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>({.n = 1 << 14,
                                             .dist = data::Distribution::uniform_distinct,
                                             .distinct_values = 4,
                                             .seed = 12});
    SampleSelectConfig cfg;
    cfg.num_buckets = 256;
    const auto tree = core::sample_splitters<float>(dev, data, cfg, simt::LaunchOrigin::host);
    const auto eq = std::count(tree.equality.begin(), tree.equality.end(), std::uint8_t{1});
    EXPECT_GE(eq, 3);  // each heavy value should collapse into an equality bucket
}

}  // namespace
