// Tests for approximate SampleSelect (Sec. II-C / V-G): error bounds,
// consistency of the reported rank error, and the work reduction relative
// to the exact algorithm.

#include "core/approx_select.hpp"

#include <gtest/gtest.h>

#include "core/sample_select.hpp"
#include "data/distributions.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;
using core::SampleSelectConfig;

SampleSelectConfig approx_cfg(int buckets) {
    SampleSelectConfig cfg;
    cfg.num_buckets = buckets;
    return cfg;
}

TEST(ApproxSelect, Allows1024Buckets) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 2});
    EXPECT_NO_THROW((void)core::approx_select<float>(dev, data, n / 2, approx_cfg(1024)));
}

TEST(ApproxSelect, ReportedRankErrorMatchesDataset) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 15;
    const auto data = data::generate<double>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 7});
    const std::size_t rank = n / 3;
    const auto res = core::approx_select<double>(dev, data, rank, approx_cfg(256));
    // splitter_rank claims the exact rank of the returned value
    EXPECT_EQ(stats::min_rank<double>(data, res.value), res.splitter_rank);
    EXPECT_EQ(res.rank_error,
              res.splitter_rank > rank ? res.splitter_rank - rank : rank - res.splitter_rank);
}

class ApproxErrorBound : public ::testing::TestWithParam<int> {};

TEST_P(ApproxErrorBound, ErrorAtMostMaxBucketSize) {
    const int buckets = GetParam();
    const std::size_t n = 1 << 15;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        simt::Device dev(simt::arch_v100());
        const auto data = data::generate<float>(
            {.n = n, .dist = data::Distribution::uniform_real, .seed = seed});
        const std::size_t rank = data::random_rank(n, seed);
        SampleSelectConfig cfg = approx_cfg(buckets);
        cfg.seed = seed * 31 + 1;
        const auto res = core::approx_select<float>(dev, data, rank, cfg);
        // Sec. II-C: worst case half the max bucket size for interior ranks;
        // boundary ranks can see up to one full bucket.
        EXPECT_LE(res.rank_error, res.max_bucket);
    }
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, ApproxErrorBound, ::testing::Values(128, 256, 512, 1024));

TEST(ApproxSelect, MoreBucketsSmallerError) {
    const std::size_t n = 1 << 16;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 3});
    auto mean_err = [&](int b) {
        double total = 0;
        for (std::uint64_t s = 0; s < 8; ++s) {
            simt::Device dev(simt::arch_v100());
            SampleSelectConfig cfg = approx_cfg(b);
            cfg.seed = s;
            total += static_cast<double>(
                core::approx_select<float>(dev, data, data::random_rank(n, s), cfg).rank_error);
        }
        return total / 8.0;
    };
    // 8x more buckets should clearly reduce the mean rank error.
    EXPECT_LT(mean_err(1024), mean_err(128));
}

TEST(ApproxSelect, RadicallyLessWorkThanExact) {
    const std::size_t n = 1 << 18;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 5});
    simt::Device dex(simt::arch_v100());
    const auto exact = core::sample_select<float>(dex, data, n / 2, approx_cfg(256));
    simt::Device dap(simt::arch_v100());
    const auto approx = core::approx_select<float>(dap, data, n / 2, approx_cfg(256));
    EXPECT_LT(approx.sim_ns, exact.sim_ns);
    // no oracles, no filter: strictly less global-memory traffic
    EXPECT_LT(dap.counter_totals().total_global_bytes(),
              dex.counter_totals().total_global_bytes());
}

TEST(ApproxSelect, ApproxBucketLimitEnforced) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<float>(
        {.n = 1 << 12, .dist = data::Distribution::uniform_real, .seed = 1});
    EXPECT_THROW((void)core::approx_select<float>(dev, data, 100, approx_cfg(2048)),
                 std::invalid_argument);
}

TEST(ApproxSelect, WorksWithGlobalAtomics) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::normal, .seed = 9});
    SampleSelectConfig cfg = approx_cfg(256);
    cfg.atomic_space = simt::AtomicSpace::global;
    const auto res = core::approx_select<float>(dev, data, n / 2, cfg);
    EXPECT_LE(res.rank_error, res.max_bucket);
}

TEST(ApproxSelect, DuplicateHeavyDataStillBounded) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>({.n = n,
                                             .dist = data::Distribution::uniform_distinct,
                                             .distinct_values = 16,
                                             .seed = 4});
    const auto res = core::approx_select<float>(dev, data, n / 2, approx_cfg(256));
    // With duplicated splitters the reported boundary rank may land anywhere
    // in the value's rank interval (equality buckets shift the boundary past
    // the duplicates), but never outside it.
    const auto lo = stats::min_rank<float>(data, res.value);
    const auto hi = lo + stats::multiplicity<float>(data, res.value);
    EXPECT_GE(res.splitter_rank, lo);
    EXPECT_LE(res.splitter_rank, hi);
    // The reported rank error is an upper bound on the true rank error.
    EXPECT_LE(stats::rank_error<float>(data, res.value, n / 2), res.rank_error);
}

TEST(ApproxSelect, SmoothDataSmallValueError) {
    // Sec. II-C: for smooth distributions the small rank error translates
    // into a small value error.
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 16;
    const auto data = data::generate<double>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 6});
    const std::size_t rank = n / 2;
    const auto res = core::approx_select<double>(dev, data, rank, approx_cfg(1024));
    const double exact = stats::nth_element_reference(data, rank);
    EXPECT_NEAR(res.value, exact, 0.01);  // uniform on [0,1): rank err ~ value err
}

}  // namespace
