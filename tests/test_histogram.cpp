// Tests for the equi-depth histogram and rank-query API (core/histogram.hpp).

#include "core/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/distributions.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;

core::SampleSelectConfig hcfg(int buckets) {
    core::SampleSelectConfig cfg;
    cfg.num_buckets = buckets;
    return cfg;
}

TEST(EquiDepthHistogram, CountsSumToN) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 15;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::lognormal, .seed = 3});
    const auto h = core::equi_depth_histogram<float>(dev, data, hcfg(256));
    std::int64_t total = 0;
    for (auto c : h.counts) total += c;
    EXPECT_EQ(total, static_cast<std::int64_t>(n));
    EXPECT_EQ(h.cumulative.front(), 0);
    EXPECT_EQ(h.cumulative.back(), static_cast<std::int64_t>(n));
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
        EXPECT_EQ(h.cumulative[i + 1] - h.cumulative[i], h.counts[i]);
    }
}

TEST(EquiDepthHistogram, CountsMatchHostReference) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 13;
    const auto data = data::generate<double>(
        {.n = n, .dist = data::Distribution::normal, .seed = 5});
    const auto h = core::equi_depth_histogram<double>(dev, data, hcfg(64));
    std::vector<std::int64_t> ref(64, 0);
    for (double x : data) ++ref[static_cast<std::size_t>(h.tree.find_bucket(x))];
    EXPECT_EQ(h.counts, ref);
}

TEST(EquiDepthHistogram, RoughlyEquiDepth) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 17;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::exponential, .seed = 7});
    core::SampleSelectConfig cfg = hcfg(64);
    cfg.sample_size = 4096;  // tight splitters
    const auto h = core::equi_depth_histogram<float>(dev, data, cfg);
    const auto ideal = static_cast<std::int64_t>(n) / 64;
    for (auto c : h.counts) {
        EXPECT_LT(c, 3 * ideal);  // no bucket grossly overloaded
    }
}

TEST(EquiDepthHistogram, RankBoundsContainTrueRank) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 9});
    const auto h = core::equi_depth_histogram<float>(dev, data, hcfg(128));
    for (std::uint64_t s = 0; s < 50; ++s) {
        const float v = data[data::random_rank(n, s)];
        const auto [lo, hi] = h.rank_bounds(v);
        const auto true_rank = stats::min_rank<float>(data, v);
        EXPECT_GE(true_rank, lo) << v;
        EXPECT_LT(true_rank, hi) << v;
    }
}

TEST(EquiDepthHistogram, CdfMonotoneAndBounded) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::normal, .seed = 11});
    const auto h = core::equi_depth_histogram<float>(dev, data, hcfg(256));
    double prev = -1.0;
    for (float v = -3.0f; v <= 3.0f; v += 0.25f) {
        const double c = h.cdf(v);
        EXPECT_GE(c, 0.0);
        EXPECT_LE(c, 1.0);
        EXPECT_GE(c, prev - 1e-12);
        prev = c;
    }
    EXPECT_LT(h.cdf(-10.0f), 0.02);
    EXPECT_GT(h.cdf(10.0f), 0.98);
}

TEST(EquiDepthHistogram, EmptyThrows) {
    simt::Device dev(simt::arch_v100());
    EXPECT_THROW((void)core::equi_depth_histogram<float>(dev, {}, hcfg(64)),
                 std::invalid_argument);
}

TEST(RankOf, ExactCounts) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{1, 2, 2, 3, 3, 3, 4};
    const auto r = core::rank_of<float>(dev, data, 3.0f);
    EXPECT_EQ(r.less, 3u);
    EXPECT_EQ(r.equal, 3u);
    const auto r2 = core::rank_of<float>(dev, data, 2.5f);
    EXPECT_EQ(r2.less, 3u);
    EXPECT_EQ(r2.equal, 0u);
}

TEST(RankOf, MatchesStatsReference) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>({.n = n,
                                             .dist = data::Distribution::uniform_distinct,
                                             .distinct_values = 256,
                                             .seed = 13});
    for (std::uint64_t s = 0; s < 10; ++s) {
        const float v = data[data::random_rank(n, s)];
        const auto r = core::rank_of<float>(dev, data, v);
        EXPECT_EQ(r.less, stats::min_rank<float>(data, v));
        EXPECT_EQ(r.equal, stats::multiplicity<float>(data, v));
    }
}

TEST(RankOf, EmptyData) {
    simt::Device dev(simt::arch_v100());
    const auto r = core::rank_of<float>(dev, {}, 1.0f);
    EXPECT_EQ(r.less, 0u);
    EXPECT_EQ(r.equal, 0u);
}

TEST(RankOf, SinglePassTraffic) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 16;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 17});
    (void)core::rank_of<float>(dev, data, 0.5f);
    const auto c = dev.counter_totals();
    // one read of the input + tiny counter traffic
    EXPECT_GE(c.global_bytes_read, n * sizeof(float));
    EXPECT_LE(c.global_bytes_read, n * sizeof(float) + 4096);
}

}  // namespace
