// StreamSan tests (simt/streamsan.hpp, docs/streamsan.md): the environment
// grammar, a catalogue of deliberately-broken stream/event/pool micro-
// scenarios each asserting the exact diagnostic kind, the clean patterns
// that must NOT report (event edges, synchronize, stream-creation
// causality, gated pool reuse, disjoint ranges), collect-mode accumulation
// with the chrome-trace hazard track, determinism of the event-count
// golden stream with the analyzer on, and golden zero-hazard passes over
// the real multi-stream users: BatchExecutor and SelectServer::pump.

#include "simt/streamsan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <future>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/batch_executor.hpp"
#include "core/pipeline.hpp"
#include "core/sample_select.hpp"
#include "data/distributions.hpp"
#include "server/service.hpp"
#include "simt/arch.hpp"
#include "simt/device.hpp"
#include "simt/memory.hpp"
#include "simt/pool.hpp"

namespace {

using namespace gpusel;
using simt::HazardKind;
using simt::StreamSanError;
using simt::StreamSanMode;

/// Env-var guard: sets GPUSEL_STREAMSAN for one scope, restores after.
class StreamSanEnv {
public:
    explicit StreamSanEnv(const char* value) {
        const char* old = std::getenv("GPUSEL_STREAMSAN");
        had_ = old != nullptr;
        if (had_) saved_ = old;
        if (value != nullptr) {
            ::setenv("GPUSEL_STREAMSAN", value, 1);
        } else {
            ::unsetenv("GPUSEL_STREAMSAN");
        }
    }
    ~StreamSanEnv() {
        if (had_) {
            ::setenv("GPUSEL_STREAMSAN", saved_.c_str(), 1);
        } else {
            ::unsetenv("GPUSEL_STREAMSAN");
        }
    }

private:
    std::string saved_;
    bool had_ = false;
};

// Device is pinned (no moves), so tests construct it locally and install
// StreamSan right after -- before any allocation, the same order the
// GPUSEL_STREAMSAN env path uses.
simt::Device make_dev() { return simt::Device(simt::arch_v100()); }

/// One-block kernel writing every element of `buf` through the tracked
/// warp store primitive.
void launch_write(simt::Device& dev, std::span<float> buf, int stream,
                  std::string name = "w") {
    dev.launch(std::move(name), {.grid_dim = 1, .block_dim = 32, .stream = stream},
               [buf](simt::BlockCtx& blk) {
                   blk.warp_tiles(buf.size(), [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       float regs[simt::kWarpSize] = {};
                       w.store(buf, base, regs);
                   });
               });
}

/// One-block kernel reading every element of `buf` through the tracked
/// warp load primitive.
void launch_read(simt::Device& dev, std::span<const float> buf, int stream,
                 std::string name = "r") {
    dev.launch(std::move(name), {.grid_dim = 1, .block_dim = 32, .stream = stream},
               [buf](simt::BlockCtx& blk) {
                   blk.warp_tiles(buf.size(), [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       float regs[simt::kWarpSize];
                       w.load(buf, base, regs);
                   });
               });
}

/// Runs `f` and returns the HazardKind of the StreamSanError it throws, or
/// nullopt if it completes (EXPECT the exact kind at the call site).
template <typename F>
std::optional<HazardKind> hazard_kind_of(F&& f) {
    try {
        f();
    } catch (const StreamSanError& e) {
        return e.hazard().kind;
    }
    return std::nullopt;
}

// ---- mode grammar -----------------------------------------------------------

TEST(StreamSanModeTest, ParsesEnvironmentGrammar) {
    {
        StreamSanEnv env(nullptr);
        EXPECT_EQ(simt::StreamSan::mode_from_env(), StreamSanMode::off);
    }
    for (const char* v : {"", "0", "off"}) {
        StreamSanEnv env(v);
        EXPECT_EQ(simt::StreamSan::mode_from_env(), StreamSanMode::off) << v;
    }
    for (const char* v : {"1", "strict", "on"}) {
        StreamSanEnv env(v);
        EXPECT_EQ(simt::StreamSan::mode_from_env(), StreamSanMode::strict) << v;
    }
    for (const char* v : {"2", "collect"}) {
        StreamSanEnv env(v);
        EXPECT_EQ(simt::StreamSan::mode_from_env(), StreamSanMode::collect) << v;
    }
    {
        StreamSanEnv env("bogus");
        EXPECT_THROW((void)simt::StreamSan::mode_from_env(), std::invalid_argument);
    }
}

// ---- deliberately-broken scenarios (strict mode, exact diagnostic kind) -----

TEST(StreamSanHazards, CrossStreamWriteWriteRace) {
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    auto buf = dev.alloc<float>(64);
    launch_write(dev, buf.span(), 0, "writer_a");
    EXPECT_EQ(hazard_kind_of([&] { launch_write(dev, buf.span(), s1, "writer_b"); }),
              HazardKind::write_write_race);
    EXPECT_GE(dev.stream_sanitizer()->total_hazards(), 1u);
}

TEST(StreamSanHazards, CrossStreamReadAfterWriteRace) {
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    auto buf = dev.alloc<float>(64);
    launch_write(dev, buf.span(), 0);
    EXPECT_EQ(hazard_kind_of([&] { launch_read(dev, buf.span(), s1); }),
              HazardKind::read_write_race);
}

TEST(StreamSanHazards, CrossStreamWriteAfterReadRace) {
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    auto buf = dev.alloc<float>(64);
    launch_read(dev, buf.span(), 0);
    EXPECT_EQ(hazard_kind_of([&] { launch_write(dev, buf.span(), s1); }),
              HazardKind::read_write_race);
}

TEST(StreamSanHazards, EventEdgeCoversOnlyEarlierWork) {
    // The event is recorded BETWEEN the write to `a` and the write to `b`,
    // so waiting on it orders `a` but leaves `b` racy.
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    auto a = dev.alloc<float>(64);
    auto b = dev.alloc<float>(64);
    launch_write(dev, a.span(), 0, "write_a");
    const double ev = dev.record_event(0);
    launch_write(dev, b.span(), 0, "write_b");
    dev.wait_event(s1, ev);
    launch_write(dev, a.span(), s1, "write_a_lane");  // ordered: clean
    EXPECT_EQ(hazard_kind_of([&] { launch_write(dev, b.span(), s1, "write_b_lane"); }),
              HazardKind::write_write_race);
}

TEST(StreamSanHazards, ForkWithoutJoinRaces) {
    // A fork edge orders the lane's start, but reading the lane's output
    // on the base stream without a join edge back is a race.
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    auto buf = dev.alloc<float>(64);
    const double fork = dev.record_event(0);
    dev.wait_event(s1, fork);
    launch_write(dev, buf.span(), s1, "lane_work");
    EXPECT_EQ(hazard_kind_of([&] { launch_read(dev, buf.span(), 0, "base_consume"); }),
              HazardKind::read_write_race);
}

TEST(StreamSanHazards, WaitOnUnrecordedEvent) {
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    auto buf = dev.alloc<float>(64);
    launch_write(dev, buf.span(), 0);
    const double bogus = dev.elapsed_ns() * 0.5;  // in the past, never recorded
    ASSERT_GT(bogus, 0.0);
    EXPECT_EQ(hazard_kind_of([&] { dev.wait_event(s1, bogus); }), HazardKind::wait_unrecorded);
}

TEST(StreamSanHazards, WaitOnPreResetEventIsUnrecorded) {
    // reset_clock() restarts the timeline: snapshots keyed by the old
    // timestamps are dropped, so a stale event handle is a hazard even if
    // the numeric value is reachable again.
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    auto buf = dev.alloc<float>(64);
    launch_write(dev, buf.span(), 0);
    const double ev = dev.record_event(0);
    ASSERT_GT(ev, 0.0);
    dev.reset_clock();
    launch_write(dev, buf.span(), 0);  // same launch: clock reaches >= ev again
    launch_write(dev, buf.span(), 0);
    ASSERT_GE(dev.elapsed_ns(), ev);
    EXPECT_EQ(hazard_kind_of([&] { dev.wait_event(s1, ev); }), HazardKind::wait_unrecorded);
}

TEST(StreamSanHazards, FutureWaitIsHbCycle) {
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    EXPECT_EQ(hazard_kind_of([&] { dev.wait_event(s1, dev.elapsed_ns() + 1.0e9); }),
              HazardKind::hb_cycle);
}

TEST(StreamSanHazards, UngatedPoolReuseAcrossStreams) {
    // A standalone pool has no stream clock, so cross-stream reuse has no
    // gating event: handing stream 1 a block last released on stream 0 is
    // exactly the use-after-free window the gate exists to close.
    simt::AllocationTracker tracker;
    simt::MemoryPool pool(tracker);
    simt::StreamSan ssan(StreamSanMode::strict, /*concurrent=*/false);
    pool.set_stream_sanitizer(&ssan);
    simt::PoolBlock* blk = pool.acquire(256, 0);
    pool.release(blk, 0);
    EXPECT_EQ(hazard_kind_of([&] { (void)pool.acquire(256, 1); }), HazardKind::pool_reuse);
}

TEST(StreamSanHazards, ReleaseInFlightWrite) {
    // The block's last write (stream s1) is not ordered before the release
    // claimed on stream 0.  The release runs on a noexcept path, so the
    // hazard is deferred and thrown from the next launch bracket.
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    simt::PoolBlock* blk = dev.pool().acquire(64 * sizeof(float), s1);
    std::span<float> user(reinterpret_cast<float*>(blk->storage.get()), 64);
    launch_write(dev, user, s1, "lane_write");
    dev.pool().release(blk, 0);
    auto scratch = dev.alloc<float>(32);
    EXPECT_EQ(hazard_kind_of([&] { launch_write(dev, scratch.span(), 0); }),
              HazardKind::release_in_flight);
}

TEST(StreamSanHazards, ReleaseInFlightRead) {
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    simt::PoolBlock* blk = dev.pool().acquire(64 * sizeof(float), s1);
    std::span<const float> user(reinterpret_cast<const float*>(blk->storage.get()), 64);
    launch_read(dev, user, s1, "lane_read");
    dev.pool().release(blk, 0);
    auto scratch = dev.alloc<float>(32);
    EXPECT_EQ(hazard_kind_of([&] { launch_write(dev, scratch.span(), 0); }),
              HazardKind::release_in_flight);
}

TEST(StreamSanHazards, HazardCarriesContext) {
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    auto buf = dev.alloc<float>(64);
    launch_write(dev, buf.span(), 0, "writer_a");
    try {
        launch_write(dev, buf.span(), s1, "writer_b");
        FAIL() << "expected StreamSanError";
    } catch (const StreamSanError& e) {
        const simt::StreamHazard& h = e.hazard();
        EXPECT_EQ(h.kind, HazardKind::write_write_race);
        EXPECT_EQ(h.kernel, "writer_b");
        EXPECT_EQ(h.stream, s1);
        EXPECT_EQ(h.other_stream, 0);
        EXPECT_LT(h.lo, h.hi);
        EXPECT_EQ(h.hi - h.lo, 64 * sizeof(float));
        EXPECT_NE(std::string(e.what()).find("write_write_race"), std::string::npos);
    }
}

// ---- clean patterns: must not report ----------------------------------------

TEST(StreamSanClean, EventEdgeOrdersCrossStreamAccess) {
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    auto buf = dev.alloc<float>(64);
    launch_write(dev, buf.span(), 0);
    const double ev = dev.record_event(0);
    dev.wait_event(s1, ev);
    launch_read(dev, buf.span(), s1);
    launch_write(dev, buf.span(), s1);
    EXPECT_EQ(dev.stream_sanitizer()->total_hazards(), 0u);
    EXPECT_GT(dev.stream_sanitizer()->checks(), 0u);
}

TEST(StreamSanClean, SynchronizeOrdersEverything) {
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    auto buf = dev.alloc<float>(64);
    launch_write(dev, buf.span(), s1);
    dev.synchronize();
    launch_write(dev, buf.span(), 0);
    EXPECT_EQ(dev.stream_sanitizer()->total_hazards(), 0u);
}

TEST(StreamSanClean, StreamCreationOrdersPriorWork) {
    // create_stream()'s causality rule: the new stream starts at the
    // device completion time, after everything enqueued so far.
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    auto buf = dev.alloc<float>(64);
    launch_write(dev, buf.span(), 0);
    const int s1 = dev.create_stream();
    launch_write(dev, buf.span(), s1);
    EXPECT_EQ(dev.stream_sanitizer()->total_hazards(), 0u);
}

TEST(StreamSanClean, DisjointBuffersDoNotAlias) {
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    auto a = dev.alloc<float>(64);
    auto b = dev.alloc<float>(64);
    launch_write(dev, a.span(), 0);
    launch_write(dev, b.span(), s1);
    EXPECT_EQ(dev.stream_sanitizer()->total_hazards(), 0u);
}

TEST(StreamSanClean, DisjointRangesWithinOneBuffer) {
    // The analysis is byte-range based: two streams in disjoint halves of
    // one region are not a conflict.
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    auto buf = dev.alloc<float>(128);
    launch_write(dev, buf.span().subspan(0, 64), 0);
    launch_write(dev, buf.span().subspan(64, 64), s1);
    EXPECT_EQ(dev.stream_sanitizer()->total_hazards(), 0u);
}

TEST(StreamSanClean, SameStreamAccessesAreOrdered) {
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    auto buf = dev.alloc<float>(64);
    launch_write(dev, buf.span(), 0);
    launch_read(dev, buf.span(), 0);
    launch_write(dev, buf.span(), 0);
    EXPECT_EQ(dev.stream_sanitizer()->total_hazards(), 0u);
}

TEST(StreamSanClean, GatedPoolReuseJoinsTimelines) {
    // The Device pool gates cross-stream reuse on completed timelines;
    // StreamSan models the gate as the allocator's internal event edge, so
    // the reusing stream inherits the previous user's history cleanly.
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    simt::PoolBlock* blk = dev.pool().acquire(64 * sizeof(float), 0);
    std::span<float> user(reinterpret_cast<float*>(blk->storage.get()), 64);
    launch_write(dev, user, 0);
    dev.pool().release(blk, 0);
    dev.synchronize();
    const int s1 = dev.create_stream();
    simt::PoolBlock* again = dev.pool().acquire(64 * sizeof(float), s1);
    ASSERT_EQ(again, blk);  // LIFO reuse of the same backing block
    launch_write(dev, user, s1);
    dev.pool().release(again, s1);
    launch_write(dev, user, s1);  // dangling span, but the region is unregistered
    EXPECT_EQ(dev.stream_sanitizer()->total_hazards(), 0u);
}

// ---- collect mode -----------------------------------------------------------

TEST(StreamSanCollect, RecordsHazardsAndKeepsRunning) {
    simt::Device dev(simt::arch_v100());
    dev.set_stream_sanitizer(StreamSanMode::collect);
    const int s1 = dev.create_stream();
    auto buf = dev.alloc<float>(64);
    launch_write(dev, buf.span(), 0, "writer_a");
    launch_write(dev, buf.span(), s1, "writer_b");  // racy, but must not throw
    launch_read(dev, buf.span(), 0, "reader_c");    // still racy vs writer_b
    const simt::StreamSan* ssan = dev.stream_sanitizer();
    ASSERT_NE(ssan, nullptr);
    EXPECT_GE(ssan->total_hazards(), 2u);
    const auto hazards = ssan->hazards();
    ASSERT_FALSE(hazards.empty());
    EXPECT_EQ(hazards.front().kind, HazardKind::write_write_race);
    const auto& instants = ssan->trace_instants();
    ASSERT_EQ(instants.size(), ssan->total_hazards());
    EXPECT_EQ(instants.front().track, simt::kStreamSanTrack);
    EXPECT_EQ(instants.front().name, "write_write_race");
    EXPECT_EQ(dev.robustness().streamsan_hazards, ssan->total_hazards());
}

TEST(StreamSanCollect, ClearResetsSinks) {
    simt::Device dev(simt::arch_v100());
    dev.set_stream_sanitizer(StreamSanMode::collect);
    const int s1 = dev.create_stream();
    auto buf = dev.alloc<float>(64);
    launch_write(dev, buf.span(), 0);
    launch_write(dev, buf.span(), s1);
    simt::StreamSan* ssan = dev.stream_sanitizer();
    ASSERT_GE(ssan->total_hazards(), 1u);
    ssan->clear();
    EXPECT_EQ(ssan->total_hazards(), 0u);
    EXPECT_TRUE(ssan->hazards().empty());
    EXPECT_TRUE(ssan->trace_instants().empty());
}

// ---- strict mode surfaces through the Status channel ------------------------

TEST(StreamSanStatus, StrictHazardMapsToSanitizerViolation) {
    // The pipeline's retry wrapper maps StreamSanError to
    // SelectError::sanitizer_violation (never retried), the same policy as
    // SimTSan violations.
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    const int s1 = dev.create_stream();
    auto buf = dev.alloc<float>(64);
    launch_write(dev, buf.span(), 0);
    core::SampleSelectConfig cfg;
    core::PipelineContext ctx(dev, cfg);
    const core::Status result =
        core::with_fault_retry(ctx, [&] { launch_write(dev, buf.span(), s1); });
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.code, core::SelectError::sanitizer_violation);
    EXPECT_NE(result.message.find("write_write_race"), std::string::npos);
}

// ---- determinism ------------------------------------------------------------

TEST(StreamSanGolden, EventStreamIdenticalWithAnalyzerOn) {
    // StreamSan never touches counters, clocks or profiles: the golden
    // event stream of a full selection is byte-identical with it on.
    const auto data = data::generate<float>(
        {.n = 1u << 16, .dist = data::Distribution::uniform_real, .seed = 7});
    auto run = [&](bool with_ssan) {
        simt::Device dev(simt::arch_v100());
        if (with_ssan) dev.set_stream_sanitizer(StreamSanMode::strict);
        auto result = core::try_sample_select<float>(dev, data, data.size() / 2, {});
        EXPECT_TRUE(result.ok());
        std::ostringstream os;
        os << dev.counter_totals();
        return std::tuple(dev.launch_count(), dev.elapsed_ns(), os.str());
    };
    EXPECT_EQ(run(false), run(true));
}

// ---- golden clean passes over the real multi-stream users -------------------

TEST(StreamSanGolden, BatchExecutorIsClean) {
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    std::vector<std::vector<float>> inputs;
    std::vector<core::BatchProblem<float>> problems;
    for (std::uint64_t i = 0; i < 8; ++i) {
        inputs.push_back(data::generate<float>(
            {.n = 1u << 14, .dist = data::Distribution::uniform_real, .seed = 100 + i}));
        problems.push_back({inputs.back(), inputs.back().size() / 2, 0.0});
    }
    core::BatchExecutor<float> exec(dev, {}, {.streams = 4});
    const auto result = exec.run(problems);
    ASSERT_TRUE(result.ok()) << result.status().message;
    EXPECT_EQ(result.value().streams_used, 4);
    ASSERT_NE(dev.stream_sanitizer(), nullptr);
    EXPECT_EQ(dev.stream_sanitizer()->total_hazards(), 0u);
    EXPECT_GT(dev.stream_sanitizer()->checks(), 0u);  // liveness: it was looking
}

TEST(StreamSanGolden, ServerPumpIsClean) {
    auto dev = make_dev();
    dev.set_stream_sanitizer(StreamSanMode::strict);
    server::SelectServer srv(dev, {});
    const auto data = data::generate<float>(
        {.n = 1u << 15, .dist = data::Distribution::uniform_real, .seed = 11});
    std::vector<std::future<server::Response>> futures;
    for (int i = 0; i < 6; ++i) {
        server::Request req;
        req.data = data;
        req.rank = static_cast<std::size_t>(i) * 1000;
        futures.push_back(srv.submit(req));
    }
    while (srv.pump()) {
    }
    for (auto& fut : futures) {
        const server::Response r = fut.get();
        EXPECT_TRUE(r.status.ok()) << r.status.message;
    }
    ASSERT_NE(dev.stream_sanitizer(), nullptr);
    EXPECT_EQ(dev.stream_sanitizer()->total_hazards(), 0u);
    EXPECT_GT(dev.stream_sanitizer()->checks(), 0u);
}

}  // namespace
