// Tests for the fused top-k selection (Sec. IV-I).

#include "core/topk.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/distributions.hpp"

namespace {

using namespace gpusel;

template <typename T>
void expect_topk(const std::vector<T>& data, std::size_t k, const core::SampleSelectConfig& cfg) {
    simt::Device dev(simt::arch_v100());
    const auto res = core::topk_largest<T>(dev, data, k, cfg);
    ASSERT_EQ(res.elements.size(), k);

    std::vector<T> expect(data);
    std::sort(expect.begin(), expect.end(), std::greater<>());
    expect.resize(k);
    std::vector<T> got = res.elements;
    std::sort(got.begin(), got.end(), std::greater<>());
    std::sort(expect.begin(), expect.end(), std::greater<>());
    EXPECT_EQ(got, expect);
    EXPECT_EQ(res.threshold, expect.back());
}

TEST(TopK, SmallHandComputed) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{5, 1, 9, 3, 7, 2, 8};
    const auto res = core::topk_largest<float>(dev, data, 3, {});
    std::vector<float> got = res.elements;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<float>{7, 8, 9}));
    EXPECT_EQ(res.threshold, 7.0f);
}

class TopKSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopKSizes, MatchesSortedReference) {
    const std::size_t k = GetParam();
    const std::size_t n = 1 << 15;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 19});
    expect_topk(data, k, {});
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKSizes, ::testing::Values(1u, 10u, 100u, 5000u, 32768u));

TEST(TopK, WorksWithDuplicates) {
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>({.n = n,
                                             .dist = data::Distribution::uniform_distinct,
                                             .distinct_values = 16,
                                             .seed = 23});
    expect_topk(data, n / 10, {});
    expect_topk(data, std::size_t{5}, {});
}

TEST(TopK, AllEqualInput) {
    simt::Device dev(simt::arch_v100());
    const std::vector<double> data(1 << 13, 2.5);
    const auto res = core::topk_largest<double>(dev, data, 100, {});
    ASSERT_EQ(res.elements.size(), 100u);
    for (double x : res.elements) EXPECT_EQ(x, 2.5);
    EXPECT_EQ(res.threshold, 2.5);
}

TEST(TopK, GlobalAtomicMode) {
    core::SampleSelectConfig cfg;
    cfg.atomic_space = simt::AtomicSpace::global;
    const std::size_t n = 1 << 14;
    const auto data = data::generate<double>(
        {.n = n, .dist = data::Distribution::normal, .seed = 29});
    expect_topk(data, std::size_t{500}, cfg);
}

TEST(TopK, KEqualsNReturnsEverything) {
    const std::size_t n = 1 << 12;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::exponential, .seed = 31});
    expect_topk(data, n, {});
}

TEST(TopKSmallest, MatchesSortedReference) {
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::normal, .seed = 41});
    simt::Device dev(simt::arch_v100());
    const std::size_t k = 50;
    const auto res = core::topk_smallest<float>(dev, data, k, {});
    std::vector<float> expect(data);
    std::sort(expect.begin(), expect.end());
    expect.resize(k);
    std::vector<float> got = res.elements;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect);
    EXPECT_EQ(res.threshold, expect.back());
}

TEST(TopKSmallest, WithDuplicatesAndNegatives) {
    simt::Device dev(simt::arch_v100());
    std::vector<double> data;
    for (int i = 0; i < 5000; ++i) data.push_back(static_cast<double>(i % 7) - 3.0);
    const auto res = core::topk_smallest<double>(dev, data, 100, {});
    for (double x : res.elements) EXPECT_EQ(x, -3.0);
    EXPECT_EQ(res.threshold, -3.0);
}

TEST(TopKSmallest, InvalidKThrows) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{1, 2, 3};
    EXPECT_THROW((void)core::topk_smallest<float>(dev, data, 0, {}), std::out_of_range);
}

TEST(TopK, InvalidKThrows) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{1, 2, 3};
    EXPECT_THROW((void)core::topk_largest<float>(dev, data, 0, {}), std::out_of_range);
    EXPECT_THROW((void)core::topk_largest<float>(dev, data, 4, {}), std::out_of_range);
}

TEST(TopKIndices, ValuesMatchInputAtIndices) {
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 51});
    simt::Device dev(simt::arch_v100());
    const std::size_t k = 200;
    const auto res = core::topk_largest_with_indices<float>(dev, data, k, {});
    ASSERT_EQ(res.values.size(), k);
    ASSERT_EQ(res.indices.size(), k);
    std::set<std::size_t> seen;
    for (std::size_t i = 0; i < k; ++i) {
        ASSERT_LT(res.indices[i], n);
        EXPECT_EQ(res.values[i], data[res.indices[i]]) << i;
        EXPECT_TRUE(seen.insert(res.indices[i]).second) << "duplicate index";
    }
    // the selected set is exactly the k largest
    std::vector<float> expect(data);
    std::sort(expect.begin(), expect.end(), std::greater<>());
    expect.resize(k);
    auto got = res.values;
    std::sort(got.begin(), got.end(), std::greater<>());
    std::sort(expect.begin(), expect.end(), std::greater<>());
    EXPECT_EQ(got, expect);
    EXPECT_EQ(res.threshold, expect.back());
}

TEST(TopKIndices, TieHandlingAtThreshold) {
    // many elements equal the threshold: exactly k results, all valid
    simt::Device dev(simt::arch_v100());
    std::vector<float> data(10000, 1.0f);
    for (std::size_t i = 0; i < 50; ++i) data[i * 37] = 2.0f;  // 50 clear winners
    const std::size_t k = 500;  // 50 winners + 450 of the ties
    const auto res = core::topk_largest_with_indices<float>(dev, data, k, {});
    ASSERT_EQ(res.values.size(), k);
    std::size_t twos = 0;
    for (std::size_t i = 0; i < k; ++i) {
        EXPECT_EQ(res.values[i], data[res.indices[i]]);
        if (res.values[i] == 2.0f) ++twos;
    }
    EXPECT_EQ(twos, 50u);
    EXPECT_EQ(res.threshold, 1.0f);
}

TEST(TopKIndices, KEqualsOne) {
    simt::Device dev(simt::arch_v100());
    const auto data = data::generate<double>(
        {.n = 1 << 13, .dist = data::Distribution::normal, .seed = 53});
    const auto res = core::topk_largest_with_indices<double>(dev, data, 1, {});
    const auto max_it = std::max_element(data.begin(), data.end());
    EXPECT_EQ(res.values[0], *max_it);
    EXPECT_EQ(res.threshold, *max_it);
}

TEST(TopK, FusedFilterAvoidsExtraPasses) {
    // The upper buckets travel straight to the accumulator: total element
    // traffic must stay well below sorting-everything volumes.
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 17;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 37});
    const auto res = core::topk_largest<float>(dev, data, n / 100, {});
    EXPECT_LE(res.levels, 3u);
}

}  // namespace
