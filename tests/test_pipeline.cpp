// Tests for the SelectionPipeline layer (core/pipeline.hpp): the Sec. IV-A
// auxiliary-storage bound at the 1M-element scale with ping-pong buffer
// reuse, warm-pool event parity, and front-end edge cases that stress the
// shared descent machinery (duplicate ranks, extreme ranks, single-element
// inputs, all-recursive batches).

#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "bitonic/bitonic.hpp"
#include "core/batched_select.hpp"
#include "core/multiselect.hpp"
#include "core/sample_select.hpp"
#include "data/distributions.hpp"
#include "simt/timing.hpp"
#include "stats/order_stats.hpp"

namespace {

using namespace gpusel;

// Satellite bound test: one million floats must select within
// n * sizeof(float) / 4 auxiliary bytes (the oracle array) plus the
// plan-derived slack for counters and the level-0 bucket buffer.
TEST(Pipeline, MillionElementAuxBytesWithinQuarterPlusSlack) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 20;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 21});
    core::SampleSelectConfig cfg;
    const auto res = core::sample_select<float>(dev, data, n / 2, cfg);

    const auto plan = core::PipelinePlan::make(dev, n, cfg);
    // scratch_bytes() = oracles (n bytes = n*sizeof(float)/4) + totals +
    // per-block counts + prefix; the level-0 bucket buffer is data-
    // dependent, bounded here by n/16 elements (16x the uniform-data
    // expectation for 256 buckets).
    const std::size_t bound = plan.scratch_bytes() + n * sizeof(float) / 16;
    EXPECT_LE(res.aux_bytes, bound);
    EXPECT_GE(res.aux_bytes, n);  // the oracle array alone is n bytes
}

// Ping-pong + pool reuse must not change simulated behavior: a second
// selection on the same (warm) device replays the identical event stream.
TEST(Pipeline, WarmPoolKeepsEventStreamIdentical) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 16;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 22});
    const auto cold = core::sample_select<float>(dev, data, n / 3, {});
    const auto warm = core::sample_select<float>(dev, data, n / 3, {});
    EXPECT_EQ(cold.value, warm.value);
    EXPECT_EQ(cold.launches, warm.launches);
    EXPECT_EQ(cold.levels, warm.levels);
    EXPECT_DOUBLE_EQ(cold.sim_ns, warm.sim_ns);
    EXPECT_EQ(cold.aux_bytes, warm.aux_bytes);
}

TEST(Pipeline, PlanGridMatchesSuggestedGrid) {
    simt::Device dev(simt::arch_v100());
    core::SampleSelectConfig cfg;
    const auto plan = core::PipelinePlan::make(dev, 1 << 20, cfg);
    EXPECT_EQ(plan.grid, simt::suggest_grid(dev.arch(), 1 << 20, cfg.block_dim, cfg.unroll));
    EXPECT_EQ(plan.num_buckets, static_cast<std::size_t>(cfg.num_buckets));
    EXPECT_TRUE(plan.shared_mode);
    EXPECT_EQ(plan.block_counts_len(),
              static_cast<std::size_t>(plan.grid) * plan.num_buckets);
}

TEST(MultiSelectEdge, DuplicateRanksReturnOneValuePerQuery) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 14;
    const auto data = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 23});
    const std::vector<std::size_t> ranks{n / 2, n / 2, 7, n / 2, 7};
    const auto res = core::multi_select<float>(dev, data, ranks, {});
    ASSERT_EQ(res.values.size(), ranks.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        EXPECT_EQ(stats::rank_error<float>(data, res.values[i], ranks[i]), 0u) << "query " << i;
    }
    EXPECT_EQ(res.values[0], res.values[1]);
    EXPECT_EQ(res.values[0], res.values[3]);
    EXPECT_EQ(res.values[2], res.values[4]);
}

TEST(MultiSelectEdge, MinimumAndMaximumRanks) {
    simt::Device dev(simt::arch_v100());
    const std::size_t n = 1 << 15;
    const auto data = data::generate<double>(
        {.n = n, .dist = data::Distribution::normal, .seed = 24});
    const std::vector<std::size_t> ranks{0, n - 1};
    const auto res = core::multi_select<double>(dev, data, ranks, {});
    ASSERT_EQ(res.values.size(), 2u);
    EXPECT_EQ(res.values[0], *std::min_element(data.begin(), data.end()));
    EXPECT_EQ(res.values[1], *std::max_element(data.begin(), data.end()));
}

TEST(MultiSelectEdge, SingleElementInput) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> data{42.0f};
    const std::vector<std::size_t> ranks{0};
    const auto res = core::multi_select<float>(dev, data, ranks, {});
    ASSERT_EQ(res.values.size(), 1u);
    EXPECT_EQ(res.values[0], 42.0f);
}

TEST(BatchedSelectEdge, SingleElementSequences) {
    simt::Device dev(simt::arch_v100());
    const std::vector<float> flat{3.0f, 1.0f, 2.0f};
    const std::vector<std::size_t> offsets{0, 1, 2, 3};
    const std::vector<std::size_t> ranks{0, 0, 0};
    const auto res = core::batched_select<float>(dev, flat, offsets, ranks, {});
    ASSERT_EQ(res.values.size(), 3u);
    EXPECT_EQ(res.values[0], 3.0f);
    EXPECT_EQ(res.values[1], 1.0f);
    EXPECT_EQ(res.values[2], 2.0f);
    EXPECT_EQ(res.batched_sequences, 3u);
    EXPECT_EQ(res.recursive_sequences, 0u);
}

TEST(BatchedSelectEdge, ExtremeRanksPerSequence) {
    simt::Device dev(simt::arch_v100());
    const std::size_t len = 257;
    const auto flat = data::generate<float>(
        {.n = 2 * len, .dist = data::Distribution::uniform_real, .seed = 25});
    const std::vector<std::size_t> offsets{0, len, 2 * len};
    const std::vector<std::size_t> ranks{0, len - 1};  // min of seq 0, max of seq 1
    const auto res = core::batched_select<float>(dev, flat, offsets, ranks, {});
    ASSERT_EQ(res.values.size(), 2u);
    EXPECT_EQ(res.values[0], *std::min_element(flat.begin(), flat.begin() + len));
    EXPECT_EQ(res.values[1], *std::max_element(flat.begin() + len, flat.end()));
}

TEST(BatchedSelectEdge, AllSequencesTakeRecursiveFallback) {
    simt::Device dev(simt::arch_v100());
    const std::size_t len = bitonic::kMaxSortSize + 1;
    const std::size_t m = 3;
    const auto flat = data::generate<float>(
        {.n = m * len, .dist = data::Distribution::uniform_real, .seed = 26});
    std::vector<std::size_t> offsets(m + 1);
    for (std::size_t i = 0; i <= m; ++i) offsets[i] = i * len;
    const std::vector<std::size_t> ranks{0, len / 2, len - 1};
    const auto res = core::batched_select<float>(dev, flat, offsets, ranks, {});
    ASSERT_EQ(res.values.size(), m);
    EXPECT_EQ(res.batched_sequences, 0u);
    EXPECT_EQ(res.recursive_sequences, m);
    for (std::size_t i = 0; i < m; ++i) {
        const std::span<const float> seq(flat.data() + offsets[i], len);
        EXPECT_EQ(stats::rank_error<float>(seq, res.values[i], ranks[i]), 0u) << "seq " << i;
    }
}

}  // namespace
