// Tests for the device scan substrate (simt/scan.hpp) and the warp-level
// reduction/scan primitives.

#include "simt/scan.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "data/rng.hpp"
#include "simt/block.hpp"

namespace {

using namespace gpusel;
using namespace gpusel::simt;

std::vector<std::int32_t> reference_scan(const std::vector<std::int32_t>& in) {
    std::vector<std::int32_t> out(in.size());
    std::exclusive_scan(in.begin(), in.end(), out.begin(), 0);
    return out;
}

class ScanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSizes, MatchesStdExclusiveScan) {
    const std::size_t n = GetParam();
    Device dev(arch_v100());
    data::Xoshiro256 rng(n + 1);
    auto in = dev.alloc<std::int32_t>(n);
    std::vector<std::int32_t> host(n);
    for (auto& x : host) x = static_cast<std::int32_t>(rng.bounded(1000)) - 500;
    std::copy(host.begin(), host.end(), in.data());
    auto out = dev.alloc<std::int32_t>(n);
    exclusive_scan_i32(dev, in.span(), out.span());
    const auto expect = reference_scan(host);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], expect[i]) << "index " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(1u, 2u, 31u, 32u, 33u, 1000u, 40960u, 100001u,
                                           1u << 20));

TEST(Scan, EmptyIsNoop) {
    Device dev(arch_v100());
    exclusive_scan_i32(dev, {}, {});
    EXPECT_EQ(dev.launch_count(), 0u);
}

TEST(Scan, InPlaceAliasing) {
    Device dev(arch_v100());
    const std::size_t n = 10000;
    auto buf = dev.alloc<std::int32_t>(n);
    std::vector<std::int32_t> host(n, 1);
    std::copy(host.begin(), host.end(), buf.data());
    exclusive_scan_i32(dev, buf.span(), buf.span());
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(buf[i], static_cast<std::int32_t>(i));
    }
}

TEST(Scan, TotalReturnsSum) {
    Device dev(arch_v100());
    const std::size_t n = 1000;
    auto in = dev.alloc<std::int32_t>(n);
    for (std::size_t i = 0; i < n; ++i) in[i] = 2;
    auto out = dev.alloc<std::int32_t>(n);
    EXPECT_EQ(scan_total_i32(dev, in.span(), out.span()), 2000);
}

TEST(Scan, SizeMismatchThrows) {
    Device dev(arch_v100());
    auto in = dev.alloc<std::int32_t>(4);
    auto out = dev.alloc<std::int32_t>(3);
    EXPECT_THROW(exclusive_scan_i32(dev, in.span(), out.span()), std::invalid_argument);
}

TEST(Scan, ThreeLaunchesAndLinearTraffic) {
    Device dev(arch_v100());
    const std::size_t n = 1 << 18;
    auto in = dev.alloc<std::int32_t>(n);
    auto out = dev.alloc<std::int32_t>(n);
    exclusive_scan_i32(dev, in.span(), out.span());
    EXPECT_EQ(dev.launch_count(), 3u);
    const auto c = dev.counter_totals();
    // read in twice (phase 1 + phase 3 reads of out), write out twice
    EXPECT_GE(c.total_global_bytes(), 4 * n * sizeof(std::int32_t));
    EXPECT_LE(c.total_global_bytes(), 5 * n * sizeof(std::int32_t));
}

// ---- warp reduction primitives ---------------------------------------------

TEST(WarpReduce, SumAcrossLanes) {
    const auto arch = arch_v100();
    BlockCtx blk(arch, 0, 1, 32, 1024);
    WarpCtx w(blk, 32);
    std::int64_t regs[kWarpSize];
    for (int l = 0; l < 32; ++l) regs[l] = l;
    EXPECT_EQ(w.reduce_add(regs), 31 * 32 / 2);
    EXPECT_EQ(blk.counters().warp_shuffles, 5u);
}

TEST(WarpReduce, PartialWarp) {
    const auto arch = arch_v100();
    BlockCtx blk(arch, 0, 1, 32, 1024);
    WarpCtx w(blk, 3);
    double regs[kWarpSize] = {1.5, 2.5, 4.0};
    EXPECT_DOUBLE_EQ(w.reduce_add(regs), 8.0);
}

TEST(WarpScan, InclusivePrefix) {
    const auto arch = arch_v100();
    BlockCtx blk(arch, 0, 1, 32, 1024);
    WarpCtx w(blk, 32);
    std::int32_t regs[kWarpSize];
    for (int l = 0; l < 32; ++l) regs[l] = 1;
    w.inclusive_scan_add(regs);
    for (int l = 0; l < 32; ++l) EXPECT_EQ(regs[l], l + 1);
    EXPECT_EQ(blk.counters().warp_shuffles, 5u);
}

}  // namespace
