// Tests for the deterministic fault-injection layer (simt/fault.hpp): the
// GPUSEL_FAULTS grammar, draw-stream determinism, burst semantics, and the
// no-side-effect guarantees the Device gives around injected faults
// (docs/robustness.md "Fault model").

#include "simt/fault.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "simt/arch.hpp"
#include "simt/device.hpp"

namespace {

using namespace gpusel;

simt::LaunchConfig tiny_launch() { return {.grid_dim = 1, .block_dim = 32}; }

void noop_kernel(simt::BlockCtx& blk) { blk.charge_instr(1); }

// ---- FaultSpec grammar ----------------------------------------------------

TEST(FaultSpec, ParsesFullGrammar) {
    const auto spec = simt::FaultSpec::parse(
        "seed=7,alloc=0.25,launch=0.5,stall=0.125,stall_ns=1500,alloc_burst=3,launch_burst=2");
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_DOUBLE_EQ(spec.alloc_rate, 0.25);
    EXPECT_DOUBLE_EQ(spec.launch_rate, 0.5);
    EXPECT_DOUBLE_EQ(spec.stall_rate, 0.125);
    EXPECT_DOUBLE_EQ(spec.stall_ns, 1500.0);
    EXPECT_EQ(spec.alloc_burst, 3);
    EXPECT_EQ(spec.launch_burst, 2);
    EXPECT_TRUE(spec.any());
}

TEST(FaultSpec, DefaultsAreFaultFree) {
    const simt::FaultSpec spec;
    EXPECT_FALSE(spec.any());
    EXPECT_FALSE(simt::FaultSpec::parse("seed=42").any());
}

TEST(FaultSpec, ToleratesEmptyEntriesAndTrailingCommas) {
    const auto spec = simt::FaultSpec::parse("alloc=0.1,,launch=0.2,");
    EXPECT_DOUBLE_EQ(spec.alloc_rate, 0.1);
    EXPECT_DOUBLE_EQ(spec.launch_rate, 0.2);
}

TEST(FaultSpec, RejectsMalformedInput) {
    EXPECT_THROW((void)simt::FaultSpec::parse("bogus=1"), std::invalid_argument);
    EXPECT_THROW((void)simt::FaultSpec::parse("alloc"), std::invalid_argument);
    EXPECT_THROW((void)simt::FaultSpec::parse("alloc=abc"), std::invalid_argument);
    EXPECT_THROW((void)simt::FaultSpec::parse("alloc=1.5"), std::invalid_argument);
    EXPECT_THROW((void)simt::FaultSpec::parse("launch=-0.1"), std::invalid_argument);
    EXPECT_THROW((void)simt::FaultSpec::parse("stall_ns=-5"), std::invalid_argument);
    EXPECT_THROW((void)simt::FaultSpec::parse("alloc_burst=0"), std::invalid_argument);
    EXPECT_THROW((void)simt::FaultSpec::parse("seed=notanumber"), std::invalid_argument);
}

TEST(FaultSpec, FromEnvReadsGpuselFaults) {
    ::unsetenv("GPUSEL_FAULTS");
    EXPECT_FALSE(simt::FaultSpec::from_env().has_value());
    ::setenv("GPUSEL_FAULTS", "seed=11,launch=0.5", 1);
    const auto spec = simt::FaultSpec::from_env();
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->seed, 11u);
    EXPECT_DOUBLE_EQ(spec->launch_rate, 0.5);
    ::unsetenv("GPUSEL_FAULTS");
}

// ---- FaultInjector determinism ---------------------------------------------

TEST(FaultInjector, SameSeedReplaysTheSameSchedule) {
    simt::FaultSpec spec;
    spec.seed = 99;
    spec.alloc_rate = 0.3;
    spec.launch_rate = 0.2;
    spec.stall_rate = 0.1;
    simt::FaultInjector a(spec);
    simt::FaultInjector b(spec);
    for (int i = 0; i < 2000; ++i) {
        switch (i % 3) {
            case 0: EXPECT_EQ(a.should_fail_alloc(), b.should_fail_alloc()) << i; break;
            case 1: EXPECT_EQ(a.should_fail_launch(), b.should_fail_launch()) << i; break;
            default: EXPECT_DOUBLE_EQ(a.stall_penalty_ns(), b.stall_penalty_ns()) << i; break;
        }
    }
    EXPECT_EQ(a.counters().alloc_faults, b.counters().alloc_faults);
    EXPECT_EQ(a.counters().launch_faults, b.counters().launch_faults);
    EXPECT_EQ(a.counters().stalls, b.counters().stalls);
}

TEST(FaultInjector, DifferentSeedsGiveDifferentSchedules) {
    simt::FaultSpec sa;
    sa.seed = 1;
    sa.alloc_rate = 0.5;
    simt::FaultSpec sb = sa;
    sb.seed = 2;
    simt::FaultInjector a(sa);
    simt::FaultInjector b(sb);
    int diff = 0;
    for (int i = 0; i < 256; ++i) {
        if (a.should_fail_alloc() != b.should_fail_alloc()) ++diff;
    }
    EXPECT_GT(diff, 0);
}

TEST(FaultInjector, BurstRepeatsTheTriggeredFault) {
    // Locate the first naturally drawn fault with burst 1, then check that
    // the identical spec with burst 3 forces the two calls after it too.
    simt::FaultSpec base;
    base.seed = 5;
    base.alloc_rate = 0.05;
    simt::FaultInjector plain(base);
    int first = -1;
    for (int i = 0; i < 500 && first < 0; ++i) {
        if (plain.should_fail_alloc()) first = i;
    }
    ASSERT_GE(first, 0) << "rate 0.05 produced no fault in 500 draws";

    simt::FaultSpec bursty = base;
    bursty.alloc_burst = 3;
    simt::FaultInjector burst(bursty);
    for (int i = 0; i < first; ++i) EXPECT_FALSE(burst.should_fail_alloc()) << i;
    EXPECT_TRUE(burst.should_fail_alloc());  // the drawn fault
    EXPECT_TRUE(burst.should_fail_alloc());  // burst continuation
    EXPECT_TRUE(burst.should_fail_alloc());  // burst continuation
    EXPECT_EQ(burst.counters().alloc_faults, 3u);
}

TEST(FaultInjector, DisabledInjectorNeverFaults) {
    simt::FaultInjector inj;
    EXPECT_FALSE(inj.enabled());
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(inj.should_fail_alloc());
        EXPECT_FALSE(inj.should_fail_launch());
        EXPECT_DOUBLE_EQ(inj.stall_penalty_ns(), 0.0);
    }
}

// ---- Device wiring ----------------------------------------------------------

TEST(DeviceFaults, LaunchFaultHasNoSideEffects) {
    simt::Device dev(simt::arch_v100());
    simt::FaultSpec spec;
    spec.launch_rate = 1.0;
    dev.set_faults(spec);
    bool ran = false;
    EXPECT_THROW((void)dev.launch("doomed", tiny_launch(),
                                  [&](simt::BlockCtx& blk) {
                                      ran = true;
                                      noop_kernel(blk);
                                  }),
                 simt::LaunchFault);
    EXPECT_FALSE(ran) << "a faulted launch must not execute any block";
    EXPECT_EQ(dev.launch_count(), 0u);
    EXPECT_DOUBLE_EQ(dev.elapsed_ns(), 0.0);
    EXPECT_TRUE(dev.profiles().empty());
    EXPECT_EQ(dev.fault_counters().launch_faults, 1u);
}

TEST(DeviceFaults, AllocFaultFiresFromBothAllocAndPool) {
    simt::Device dev(simt::arch_v100());
    simt::FaultSpec spec;
    spec.alloc_rate = 1.0;
    dev.set_faults(spec);
    EXPECT_THROW((void)dev.alloc<float>(64), simt::AllocFault);
    EXPECT_THROW((void)dev.pooled<float>(64), simt::AllocFault);
    EXPECT_GE(dev.fault_counters().alloc_faults, 2u);
}

TEST(DeviceFaults, ClearFaultsRestoresHealth) {
    simt::Device dev(simt::arch_v100());
    simt::FaultSpec spec;
    spec.alloc_rate = 1.0;
    spec.launch_rate = 1.0;
    dev.set_faults(spec);
    EXPECT_THROW((void)dev.alloc<float>(8), simt::AllocFault);
    dev.clear_faults();
    EXPECT_NO_THROW((void)dev.alloc<float>(8));
    EXPECT_NO_THROW((void)dev.launch("healthy", tiny_launch(), noop_kernel));
    EXPECT_EQ(dev.launch_count(), 1u);
}

TEST(DeviceFaults, StallAdvancesTheStreamClockOnly) {
    simt::Device clean(simt::arch_v100());
    (void)clean.launch("work", tiny_launch(), noop_kernel);

    simt::Device stalled(simt::arch_v100());
    simt::FaultSpec spec;
    spec.stall_rate = 1.0;
    spec.stall_ns = 1234.5;
    stalled.set_faults(spec);
    (void)stalled.launch("work", tiny_launch(), noop_kernel);

    // The launch itself succeeds and is charged normally; the stall only
    // delays subsequent work on the stream.
    EXPECT_EQ(stalled.launch_count(), 1u);
    EXPECT_DOUBLE_EQ(stalled.elapsed_ns(), clean.elapsed_ns() + 1234.5);
    EXPECT_EQ(stalled.fault_counters().stalls, 1u);
}

TEST(DeviceFaults, DrainSurvivesAThrowingThunk) {
    simt::Device dev(simt::arch_v100());
    dev.device_enqueue([](simt::Device&) { throw std::runtime_error("boom"); });
    EXPECT_THROW(dev.drain(), std::runtime_error);

    // The device must stay usable: the next cascade drains normally.
    bool ran = false;
    dev.device_enqueue([&](simt::Device&) { ran = true; });
    EXPECT_NO_THROW(dev.drain());
    EXPECT_TRUE(ran);
}

TEST(DeviceFaults, EnvSpecIsInstalledAtConstruction) {
    ::setenv("GPUSEL_FAULTS", "seed=3,launch=1.0", 1);
    simt::Device dev(simt::arch_v100());
    ::unsetenv("GPUSEL_FAULTS");
    EXPECT_TRUE(dev.fault_injector().enabled());
    EXPECT_THROW((void)dev.launch("doomed", tiny_launch(), noop_kernel), simt::LaunchFault);
}

}  // namespace
